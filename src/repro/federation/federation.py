"""Federation builder: turns a topology description into a simulated fabric.

Builds the Figure 1 substrate: a simulator, a network whose default links
are WAN-like (cross-cloud) with LAN-like overrides inside each tenant, the
member clouds with their sections, one member tenant per cloud (by default)
and the jointly-owned infrastructure tenant.  Access control and DRAMS
components deploy onto this substrate afterwards and register their host
addresses with their tenant, after which :meth:`Federation.finalize_topology`
installs the intra-tenant latency overrides.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.common.rng import SeededRng
from repro.simnet.latency import LanProfile, LatencyModel, WanProfile
from repro.simnet.network import Network
from repro.simnet.simulator import Simulator
from repro.federation.model import Cloud, Tenant, TenantKind
from repro.federation.services import ServiceRegistry


@dataclass
class FederationConfig:
    """Topology and network parameters of a simulated federation."""

    name: str = "faas-federation"
    cloud_count: int = 2
    seed: int = 7
    wan_median_latency: float = 0.025
    lan_median_latency: float = 0.0003
    #: Same-cloud, cross-tenant links (a member tenant's PEP talking to a
    #: PDP shard placed in the *same* cloud's infrastructure section):
    #: datacenter-internal, an order of magnitude under the WAN median.
    metro_median_latency: float = 0.002
    wan_bandwidth_bps: float = 1e8
    lan_bandwidth_bps: float = 1e9

    def __post_init__(self) -> None:
        if self.cloud_count < 1:
            raise ValidationError("federation needs at least one cloud")


class Federation:
    """The instantiated federation: clouds, tenants and the network fabric."""

    def __init__(self, config: FederationConfig | None = None) -> None:
        self.config = config or FederationConfig()
        self.rng = SeededRng(self.config.seed, self.config.name)
        self.sim = Simulator()
        self.network = Network(
            self.sim,
            self.rng,
            default_latency=WanProfile(median=self.config.wan_median_latency,
                                       bandwidth_bps=self.config.wan_bandwidth_bps),
        )
        self.services = ServiceRegistry()
        self.clouds: list[Cloud] = []
        self.tenants: dict[str, Tenant] = {}
        self._build_topology()

    def _build_topology(self) -> None:
        infra_tenant = Tenant(name="infrastructure", kind=TenantKind.INFRASTRUCTURE)
        for index in range(self.config.cloud_count):
            cloud = Cloud(name=f"cloud-{index + 1}")
            # Section 'i' of each cloud backs the infrastructure tenant
            # (jointly owned), a second section backs the member tenant.
            infra_tenant.sections.append(cloud.add_section("infra"))
            member_section = cloud.add_section("workload")
            tenant = Tenant(
                name=f"tenant-{index + 1}",
                kind=TenantKind.MEMBER,
                sections=[member_section],
            )
            self.clouds.append(cloud)
            self.tenants[tenant.name] = tenant
        self.tenants[infra_tenant.name] = infra_tenant

    # -- tenant access -----------------------------------------------------------

    @property
    def infrastructure_tenant(self) -> Tenant:
        return self.tenants["infrastructure"]

    @property
    def member_tenants(self) -> list[Tenant]:
        return [tenant for name, tenant in sorted(self.tenants.items())
                if tenant.kind is TenantKind.MEMBER]

    def tenant(self, name: str) -> Tenant:
        try:
            return self.tenants[name]
        except KeyError:
            raise ValidationError(f"unknown tenant: {name!r}") from None

    # -- topology wiring ---------------------------------------------------------

    def lan_model(self) -> LatencyModel:
        return LanProfile(bandwidth_bps=self.config.lan_bandwidth_bps)

    def metro_model(self) -> LatencyModel:
        """Same-cloud, cross-tenant link profile (locality-aware routing)."""
        return WanProfile(median=self.config.metro_median_latency,
                          bandwidth_bps=self.config.lan_bandwidth_bps)

    def cloud_of_tenant(self, name: str) -> str | None:
        """The cloud backing ``name``'s first section (members map to one
        cloud; the infrastructure tenant spans all and returns None)."""
        tenant = self.tenant(name)
        if tenant.is_infrastructure or not tenant.sections:
            return None
        return tenant.sections[0].cloud_name

    def finalize_topology(self) -> int:
        """Install latency overrides between registered hosts.

        Co-tenant host pairs get LAN links; host pairs in *different*
        tenants whose registered sections share a cloud get metro links
        (only hosts explicitly placed in a section participate — unplaced
        hosts keep the classic LAN/WAN split).  Call after components
        registered their addresses; idempotent, returns the number of
        host pairs overridden.
        """
        pairs = 0
        lan = self.lan_model()
        for tenant in self.tenants.values():
            addresses = tenant.host_addresses
            for i, a in enumerate(addresses):
                for b in addresses[i + 1:]:
                    self.network.set_latency(a, b, lan)
                    pairs += 1
        # Placed hosts, grouped by cloud: cross-tenant pairs inside one
        # cloud ride the datacenter fabric, not the federation WAN.
        metro = self.metro_model()
        by_cloud: dict[str, list[tuple[str, str]]] = {}
        for tenant in self.tenants.values():
            for address, section in tenant.host_sections.items():
                by_cloud.setdefault(section.cloud_name, []).append(
                    (address, tenant.name))
        for placed in by_cloud.values():
            for i, (a, tenant_a) in enumerate(placed):
                for b, tenant_b in placed[i + 1:]:
                    if tenant_a == tenant_b:
                        continue  # co-tenant pairs already have LAN above
                    self.network.set_latency(a, b, metro)
                    pairs += 1
        return pairs

    def wire_host(self, address: str) -> int:
        """Install latency overrides for one newly registered host.

        The O(hosts) sibling of :meth:`finalize_topology` for runtime
        topology growth (an elastic decision plane adding a shard — and
        its policy replica — mid-run): only the new host's pairs are
        wired (LAN to its co-tenant hosts; metro to placed hosts of other
        tenants in the same cloud), producing the identical overrides a
        full re-finalize would, without re-walking every existing pair.
        Returns the number of pairs installed.
        """
        owner = next(
            (t for t in self.tenants.values() if address in t.host_addresses), None
        )
        if owner is None:
            raise ValidationError(f"wire_host: {address!r} is not registered with any tenant")
        pairs = 0
        lan = self.lan_model()
        for other in owner.host_addresses:
            if other != address:
                self.network.set_latency(address, other, lan)
                pairs += 1
        section = owner.section_of(address)
        if section is not None:
            metro = self.metro_model()
            for tenant in self.tenants.values():
                if tenant is owner:
                    continue
                for other, other_section in tenant.host_sections.items():
                    if other_section.cloud_name == section.cloud_name:
                        self.network.set_latency(address, other, metro)
                        pairs += 1
        return pairs

    def describe(self) -> dict:
        """Topology summary (used by the Figure 1 bench and quickstart)."""
        return {
            "name": self.config.name,
            "clouds": [
                {"name": cloud.name,
                 "sections": [section.qualified_name for section in cloud.sections]}
                for cloud in self.clouds
            ],
            "tenants": {
                name: {
                    "kind": tenant.kind.value,
                    "sections": [section.qualified_name for section in tenant.sections],
                    "hosts": list(tenant.host_addresses),
                }
                for name, tenant in sorted(self.tenants.items())
            },
        }
