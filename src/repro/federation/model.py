"""Structural model: clouds, sections, tenants.

Terminology follows the paper: a *section* is "a set of computing resources
belonging to a cloud"; a *tenant* is a virtual space of computing resources
underlying the federation; the *infrastructure tenant* is owned jointly by
all federation clouds and hosts the federation-wide services (PDP, policy
management, Analyser).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.common.errors import ValidationError


class TenantKind(Enum):
    """Member tenants host workloads; the infrastructure tenant hosts FaaS services."""

    MEMBER = "member"
    INFRASTRUCTURE = "infrastructure"


@dataclass
class Section:
    """A set of computing resources belonging to one cloud."""

    name: str
    cloud_name: str

    @property
    def qualified_name(self) -> str:
        return f"{self.cloud_name}/{self.name}"


@dataclass
class Cloud:
    """A federation member cloud contributing sections of resources."""

    name: str
    sections: list[Section] = field(default_factory=list)

    def add_section(self, name: str) -> Section:
        if any(section.name == name for section in self.sections):
            raise ValidationError(f"cloud {self.name}: duplicate section {name!r}")
        section = Section(name=name, cloud_name=self.name)
        self.sections.append(section)
        return section


@dataclass
class Tenant:
    """A virtual space of computing resources underlying the federation.

    ``sections`` lists the cloud sections backing the tenant; the
    infrastructure tenant spans sections of *every* member cloud (it is
    jointly owned), while member tenants typically map to one cloud.
    Host addresses of components deployed in the tenant are tracked so the
    builder can assign intra-tenant vs cross-tenant link latencies.
    """

    name: str
    kind: TenantKind
    sections: list[Section] = field(default_factory=list)
    host_addresses: list[str] = field(default_factory=list)
    #: Optional placement: address → the cloud section hosting it.  Hosts
    #: registered without a section keep the classic behaviour (intra-tenant
    #: LAN, cross-tenant WAN); placed hosts additionally get metro-latency
    #: links to co-located hosts of *other* tenants in the same cloud.
    host_sections: dict[str, Section] = field(default_factory=dict)

    @property
    def is_infrastructure(self) -> bool:
        return self.kind is TenantKind.INFRASTRUCTURE

    def register_host(self, address: str, section: Section | None = None) -> str:
        """Record that a component host lives in this tenant.

        ``section`` optionally pins the host to one of the tenant's cloud
        sections (locality-aware deployments use this; unplaced hosts are
        fine everywhere else).
        """
        if address in self.host_addresses:
            raise ValidationError(f"tenant {self.name}: duplicate host {address!r}")
        if section is not None:
            if section not in self.sections:
                raise ValidationError(
                    f"tenant {self.name}: section {section.qualified_name!r} "
                    "does not back this tenant")
            self.host_sections[address] = section
        self.host_addresses.append(address)
        return address

    def section_of(self, address: str) -> Section | None:
        """The cloud section hosting ``address``, if it was placed."""
        return self.host_sections.get(address)

    def address(self, component: str) -> str:
        """Conventional address of a component in this tenant."""
        return f"{component}@{self.name}"
