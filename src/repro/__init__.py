"""DRAMS: Decentralised Runtime Access Monitoring System — reproduction.

Reproduction of "Decentralised Runtime Monitoring for Access Control
Systems in Cloud Federations" (Ferdous, Margheri, Paci, Yang, Sassone;
ICDCS 2017).

Quick start (see ``examples/quickstart.py`` for the narrated version)::

    from repro.harness import MonitoredFederation
    from repro.workload import healthcare_scenario

    stack = MonitoredFederation.build(healthcare_scenario(), clouds=2)
    stack.start()
    stack.issue_requests(20)
    stack.run(until=60.0)
    print(stack.drams.stats())

Package map:

================  ========================================================
``repro.drams``    the monitoring system itself (probes, LIs, contract,
                   analyser, orchestrator)
``repro.xacml``    the XACML engine the federation's access control runs on
``repro.accesscontrol``  PEP / PDP / PRP / PAP deployment components
``repro.blockchain``     the private smart-contract PoW chain
``repro.analysis``       formal policy semantics and property checking
``repro.federation``     FaaS topology (clouds, sections, tenants)
``repro.threats``        injectable attacks and the adversary scheduler
``repro.storage``        pure-chain / DB / hybrid log stores + auditor
``repro.baselines``      centralized-monitor baseline
``repro.workload``       request generators and federation scenarios
``repro.metrics``        latency/detection summaries, table rendering
``repro.simnet``         discrete-event simulation substrate
``repro.crypto``         hashing, AEAD, Merkle, signatures, TPM
================  ========================================================
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
