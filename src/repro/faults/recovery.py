"""Recovery SLOs: turning a chaos run into numbers.

The :class:`RecoveryRecorder` rides along with a
:class:`~repro.faults.chaos.ChaosController`: every applied fault is noted
with its window, and every restart arms a *recovery watch* whose
completion timestamps the component's time-to-recover (TTR):

- a restarted **PDP shard** has recovered when it serves its first
  post-restart decision (a one-shot ``on_decision`` hook — no polling);
- a restarted **PRP replica** has recovered when its version history
  matches the authority head again (anti-entropy convergence, polled);
- a rejoined **chain node** has recovered when its sync handshake is done
  and its head equals a live peer's head (polled).

On top of the per-component TTRs the recorder keeps before/after marks of
every PEP's ``timeouts`` / ``failovers`` / ``churn_reroutes`` counters, so
a run can report decisions *lost* (timed out entirely) separately from
decisions *re-routed* (failed over and still answered) — the paper-level
distinction between degraded and broken.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.simnet.simulator import Simulator


class RecoveryRecorder:
    """Accumulates fault windows, recovery times and PEP loss accounting."""

    #: Convergence watches poll at this period (simulated seconds).
    poll_interval = 0.05
    #: A watch gives up after this many polls (a bounded simulation must
    #: not carry an immortal periodic event for a target that never
    #: converges — the missing recovery entry *is* the finding).
    max_polls = 4000

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        #: Applied fault timeline: kind, target(s), onset, reversal.
        self.faults: list[dict] = []
        #: Completed recoveries: component, target, restarted_at,
        #: recovered_at, ttr.
        self.recoveries: list[dict] = []
        #: Watches armed but not (yet) completed.
        self.watching = 0
        self._pep_marks: list[tuple] = []

    # -- timeline ----------------------------------------------------------------

    def note_fault(self, kind: str, target: str, at: float,
                   until: Optional[float] = None) -> None:
        self.faults.append({"kind": kind, "target": target, "at": at, "until": until})

    # -- recovery watches ---------------------------------------------------------

    def _record(self, component: str, target: str, restarted_at: float) -> None:
        now = self.sim.now
        self.watching -= 1
        self.recoveries.append({
            "component": component,
            "target": target,
            "restarted_at": restarted_at,
            "recovered_at": now,
            "ttr": now - restarted_at,
        })

    def watch_pdp_recovery(self, service, restarted_at: float) -> None:
        """TTR ends at the shard's first post-restart decision."""
        self.watching += 1

        def hook(request, decision) -> None:
            service.on_decision.remove(hook)
            self._record("pdp-shard", service.address, restarted_at)

        service.on_decision.append(hook)

    def watch_replica_recovery(self, policy_plane, consumer: str,
                               restarted_at: float) -> None:
        """TTR ends when the replica's history matches the authority again."""
        authority = policy_plane.authority
        replica = policy_plane.replicas()[consumer]

        def converged() -> bool:
            head = authority.version_count()
            if replica.version_count() != head:
                return False
            return head == 0 or (
                replica.current().fingerprint == authority.current().fingerprint)

        self._poll("prp-replica", consumer, restarted_at, converged)

    def watch_chain_node_recovery(self, node, peers: Iterable,
                                  restarted_at: float) -> None:
        """TTR ends when sync finished and the head matches a live peer."""
        peer_nodes = [p for p in peers if p is not node]

        def converged() -> bool:
            if node.crashed or node._syncing:
                return False
            reference = next((p for p in peer_nodes if not p.crashed), None)
            if reference is None:
                return False
            return node.chain.head.hash == reference.chain.head.hash

        self._poll("chain-node", node.address, restarted_at, converged)

    def _poll(self, component: str, target: str, restarted_at: float,
              converged) -> None:
        self.watching += 1
        state = {"polls": 0}

        def poll() -> None:
            if converged():
                self._record(component, target, restarted_at)
                return
            state["polls"] += 1
            if state["polls"] >= self.max_polls:
                self.watching -= 1
                return
            self.sim.schedule(self.poll_interval, poll,
                              label=f"recovery-poll:{target}")

        self.sim.schedule(self.poll_interval, poll, label=f"recovery-poll:{target}")

    # -- decisions lost vs re-routed ----------------------------------------------

    def bind_peps(self, peps: Iterable) -> None:
        """Snapshot PEP counters; ``pep_deltas`` reports growth since."""
        self._pep_marks = [
            (pep, pep.timeouts, pep.failovers, pep.churn_reroutes) for pep in peps
        ]

    def pep_deltas(self) -> dict:
        lost = rerouted = churned = 0
        for pep, timeouts, failovers, churn in self._pep_marks:
            lost += pep.timeouts - timeouts
            rerouted += pep.failovers - failovers
            churned += pep.churn_reroutes - churn
        return {
            "decisions_lost": lost,
            "decisions_rerouted": rerouted,
            "churn_reroutes": churned,
        }

    # -- summary -------------------------------------------------------------------

    def slos(self) -> dict:
        """The recovery report the fault benchmark serialises."""
        ttrs = [entry["ttr"] for entry in self.recoveries]
        return {
            "faults": list(self.faults),
            "recoveries": list(self.recoveries),
            "watches_outstanding": self.watching,
            "max_ttr": max(ttrs) if ttrs else 0.0,
            "mean_ttr": (sum(ttrs) / len(ttrs)) if ttrs else 0.0,
            "pep": self.pep_deltas(),
        }
