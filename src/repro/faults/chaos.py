"""The ChaosController: executes a FaultPlan against a live stack.

The controller binds a validated :class:`~repro.faults.plan.FaultPlan` to
the simulator and schedules one application event per entry (plus one
reversal event per ``until``).  Target strings resolve at *fire* time, so
``fnmatch`` patterns like ``"pdp-*@*"`` pick up shards added after the
plan was written; crash/restart targets are mapped to component-specific
semantics:

- a decision-plane shard address goes through
  :meth:`~repro.accesscontrol.plane.ShardedPdpPlane.crash_shard` /
  ``restart_shard`` (in-flight loss, partitioned-cache loss, donor
  re-warm, ``"crashed"``/``"restarted"`` membership events that drive the
  DRAMS probes);
- a PRP replica host goes through the policy plane's ``crash_replica`` /
  ``restart_replica`` (staging loss, eager anti-entropy re-bootstrap);
- a blockchain node address calls ``node.crash()`` / ``node.restart()``
  (mining stops, mempool journals, head-sync rejoin);
- anything else is treated as a plain host: detached, and re-attached on
  restart under a fresh network incarnation.

Every restart arms the matching :class:`RecoveryRecorder` watch, so a run
finishes with time-to-recover numbers per component without the caller
instrumenting anything.  An **empty plan is a strict no-op**: nothing is
scheduled, no RNG is drawn — the differential arm of ``bench_e15_faults``
pins that arming an empty controller is bit-identical to no controller.
"""

from __future__ import annotations

from fnmatch import fnmatch
from typing import Optional

from repro.common.errors import ValidationError
from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.recovery import RecoveryRecorder
from repro.simnet.network import Host, Network
from repro.simnet.simulator import Simulator

_PATTERN_CHARS = set("*?[")


class ChaosController:
    """Schedules and applies one FaultPlan; inspect ``recorder`` after."""

    def __init__(self, plan: FaultPlan, *, sim: Simulator, network: Network,
                 plane=None, policy_plane=None, nodes=None,
                 recorder: Optional[RecoveryRecorder] = None) -> None:
        if not isinstance(plan, FaultPlan):
            raise ValidationError(
                f"ChaosController needs a FaultPlan, got {type(plan).__name__}")
        self.plan = plan
        self.sim = sim
        self.network = network
        self.plane = plane
        self.policy_plane = policy_plane
        #: Blockchain nodes by address (crash targets resolve here even
        #: while the node is off the network).
        self.nodes = dict(nodes or {})
        self.recorder = recorder if recorder is not None else RecoveryRecorder(sim)
        #: Log of applied events: {at, kind, targets}.
        self.applied: list[dict] = []
        self._armed = False
        #: Generic hosts we detached, kept for re-attach on restart.
        self._crashed_hosts: dict[str, Host] = {}

    @classmethod
    def for_stack(cls, stack, plan: FaultPlan) -> "ChaosController":
        """Bind to a :class:`~repro.harness.MonitoredFederation`."""
        nodes = {}
        drams = getattr(stack, "drams", None)
        if drams is not None:
            nodes = {node.address: node for node in drams.nodes.values()}
        controller = cls(
            plan,
            sim=stack.sim,
            network=stack.federation.network,
            plane=stack.plane,
            policy_plane=stack.policy_plane,
            nodes=nodes,
        )
        controller.recorder.bind_peps(stack.peps.values())
        return controller

    # -- arming --------------------------------------------------------------------

    def arm(self) -> "ChaosController":
        """Schedule every plan entry onto the simulator (idempotent)."""
        if self._armed:
            return self
        self._armed = True
        for event in self.plan.events:
            self.sim.schedule_at(
                event.at,
                lambda event=event: self._apply(event),
                label=f"chaos:{event.kind}",
            )
        return self

    # -- application ---------------------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        handler = getattr(self, f"_apply_{event.kind}")
        targets = handler(event)
        self.applied.append({"at": self.sim.now, "kind": event.kind,
                             "targets": targets})

    def _apply_partition(self, event: FaultEvent) -> list[str]:
        group_a = self._resolve(event.group_a)
        group_b = self._resolve(event.group_b)
        self.network.partition(group_a, group_b, symmetric=event.symmetric)
        self.recorder.note_fault("partition", f"{group_a}<->{group_b}",
                                 self.sim.now, event.until)
        if event.until is not None:
            self.sim.schedule_at(
                event.until,
                lambda: self.network.heal_partition(group_a, group_b),
                label="chaos:heal",
            )
        return group_a + group_b

    def _apply_link_degrade(self, event: FaultEvent) -> list[str]:
        group_a = self._resolve(event.group_a)
        group_b = self._resolve(event.group_b)
        pairs = [(a, b) for a in group_a for b in group_b if a != b]
        for a, b in pairs:
            self.network.set_link_fault(
                a, b, loss=event.loss, duplicate=event.duplicate,
                reorder_jitter=event.reorder, extra_latency=event.extra_latency,
                symmetric=event.symmetric)
        self.recorder.note_fault(event.kind, f"{group_a}<->{group_b}",
                                 self.sim.now, event.until)
        if event.until is not None:

            def clear() -> None:
                for a, b in pairs:
                    self.network.clear_link_fault(a, b, symmetric=event.symmetric)

            self.sim.schedule_at(event.until, clear, label="chaos:clear-links")
        return group_a + group_b

    # latency_spike is link_degrade with only extra_latency set; the DSL
    # constructor guarantees that shape.
    _apply_latency_spike = _apply_link_degrade

    def _apply_crash(self, event: FaultEvent) -> list[str]:
        targets = self._resolve(event.targets)
        for address in targets:
            self._crash_target(address, event.until)
        if event.until is not None:
            self.sim.schedule_at(
                event.until,
                lambda: [self._restart_target(address) for address in targets],
                label="chaos:restart",
            )
        return targets

    def _apply_restart(self, event: FaultEvent) -> list[str]:
        targets = self._resolve(event.targets)
        for address in targets:
            self._restart_target(address)
        return targets

    def _apply_clock_skew(self, event: FaultEvent) -> list[str]:
        targets = self._resolve(event.targets)
        hosts = [self.network.host(address) for address in targets]
        for host in hosts:
            if host is not None:
                host.clock_offset = event.skew
        self.recorder.note_fault("clock_skew", ",".join(targets),
                                 self.sim.now, event.until)
        if event.until is not None:

            def reset() -> None:
                for host in hosts:
                    if host is not None:
                        host.clock_offset = 0.0

            self.sim.schedule_at(event.until, reset, label="chaos:unskew")
        return targets

    # -- component dispatch ----------------------------------------------------------

    def _crash_target(self, address: str, until: Optional[float]) -> None:
        self.recorder.note_fault("crash", address, self.sim.now, until)
        plane = self.plane
        if plane is not None and hasattr(plane, "crash_shard") and any(
            service.address == address for service in plane.services
        ):
            plane.crash_shard(address)
            return
        policy = self.policy_plane
        if policy is not None and hasattr(policy, "crash_replica"):
            consumer = policy.consumer_at(address)
            if consumer is not None:
                policy.crash_replica(consumer)
                return
        node = self.nodes.get(address)
        if node is not None:
            node.crash()
            return
        host = self.network.host(address)
        if host is None:
            raise ValidationError(f"crash target {address!r} is not a known host")
        self._crashed_hosts[address] = host
        self.network.detach(address)

    def _restart_target(self, address: str) -> None:
        now = self.sim.now
        plane = self.plane
        if plane is not None and hasattr(plane, "restart_shard") and any(
            service.address == address for service in plane.crashed()
        ):
            service = plane.restart_shard(address)
            self.recorder.watch_pdp_recovery(service, now)
            return
        policy = self.policy_plane
        if policy is not None and hasattr(policy, "restart_replica"):
            consumer = policy.consumer_at(address)
            if consumer is not None:
                policy.restart_replica(consumer)
                self.recorder.watch_replica_recovery(policy, consumer, now)
                return
        node = self.nodes.get(address)
        if node is not None:
            node.restart()
            self.recorder.watch_chain_node_recovery(
                node, self.nodes.values(), now)
            return
        host = self._crashed_hosts.pop(address, None)
        if host is None:
            raise ValidationError(
                f"restart target {address!r} was never crashed by this controller")
        self.network.attach(host)

    # -- target resolution -------------------------------------------------------------

    def _candidates(self) -> list[str]:
        candidates = set(self.network.hosts())
        if self.plane is not None:
            candidates.update(s.address for s in self.plane.services)
            if hasattr(self.plane, "crashed"):
                candidates.update(s.address for s in self.plane.crashed())
        if self.policy_plane is not None and hasattr(self.policy_plane,
                                                     "replica_addresses"):
            candidates.update(self.policy_plane.replica_addresses())
        candidates.update(self.nodes)
        candidates.update(self._crashed_hosts)
        return sorted(candidates)

    def _resolve(self, patterns: tuple[str, ...]) -> list[str]:
        """Expand address patterns against the current topology, in order."""
        candidates = self._candidates()
        resolved: list[str] = []
        for pattern in patterns:
            if _PATTERN_CHARS.isdisjoint(pattern):
                matched = [pattern]
            else:
                matched = [c for c in candidates if fnmatch(c, pattern)]
                if not matched:
                    raise ValidationError(
                        f"fault target pattern {pattern!r} matched no host "
                        f"(known: {candidates})")
            for address in matched:
                if address not in resolved:
                    resolved.append(address)
        return resolved
