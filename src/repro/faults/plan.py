"""The FaultPlan DSL: declarative, scripted failure timelines.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent` records, each
naming a fault *kind*, the simulated time it strikes (``at``), an optional
auto-reversal time (``until`` — heal, clear, restart), and the hosts it
touches.  Plans are pure data: they validate at construction, round-trip
through ``to_dict``/``from_dict`` (so docs can carry runnable examples and
``tools/check_fault_plan.py`` can lint them), and say nothing about *how* a
fault is applied — that is the :class:`~repro.faults.chaos.ChaosController`'s
job, which also resolves ``fnmatch``-style target patterns (``"pdp-*@*"``)
against the live topology at fire time.

Kinds:

``partition``
    Sever traffic between ``group_a`` and ``group_b`` (both directions by
    default; ``symmetric=False`` blocks only a→b).  ``until`` heals it.
``link_degrade``
    Install per-link loss/duplication/reordering/latency on every
    (a, b) pair across the two groups.  ``until`` clears it.
``latency_spike``
    Sugar for a pure added-latency degradation.
``crash``
    Kill the target hosts.  The controller maps each address to its
    component semantics: a PDP shard loses in-flight evaluations and its
    partitioned cache, a PRP replica its staging buffer, a chain node its
    liveness (mempool journalled).  ``until`` schedules the restart.
``restart``
    Bring previously crashed targets back (for plans that split crash and
    restart into separate entries).
``clock_skew``
    Set the targets' local clock offset to ``skew`` seconds; ``until``
    resets it.  Only observation timestamps skew (probe ``observed_at``),
    never simulator ordering.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Optional, Sequence

from repro.common.errors import ValidationError

FAULT_KINDS = (
    "partition",
    "link_degrade",
    "latency_spike",
    "crash",
    "restart",
    "clock_skew",
)

_GROUP_KINDS = ("partition", "link_degrade", "latency_spike")
_TARGET_KINDS = ("crash", "restart", "clock_skew")


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault.  Prefer the module-level constructors."""

    kind: str
    at: float
    until: Optional[float] = None
    targets: tuple[str, ...] = ()
    group_a: tuple[str, ...] = ()
    group_b: tuple[str, ...] = ()
    symmetric: bool = True
    loss: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    extra_latency: float = 0.0
    skew: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValidationError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if self.at < 0:
            raise ValidationError(f"fault time must be >= 0, got at={self.at}")
        if self.until is not None and self.until <= self.at:
            raise ValidationError(
                f"fault reversal must come after onset: at={self.at}, until={self.until}")
        if self.kind in _GROUP_KINDS:
            if not self.group_a or not self.group_b:
                raise ValidationError(
                    f"{self.kind} needs non-empty group_a and group_b")
            if self.targets:
                raise ValidationError(f"{self.kind} takes groups, not targets")
        if self.kind in _TARGET_KINDS:
            if not self.targets:
                raise ValidationError(f"{self.kind} needs at least one target")
            if self.group_a or self.group_b:
                raise ValidationError(f"{self.kind} takes targets, not groups")
        if not 0.0 <= self.loss <= 1.0:
            raise ValidationError(f"loss must be in [0,1], got {self.loss}")
        if not 0.0 <= self.duplicate <= 1.0:
            raise ValidationError(f"duplicate must be in [0,1], got {self.duplicate}")
        if self.reorder < 0 or self.extra_latency < 0:
            raise ValidationError("reorder/extra_latency must be >= 0")
        if self.kind == "link_degrade" and not any(
            (self.loss, self.duplicate, self.reorder, self.extra_latency)
        ):
            raise ValidationError(
                "link_degrade needs at least one of loss/duplicate/reorder/extra_latency")
        if self.kind == "latency_spike" and self.extra_latency <= 0:
            raise ValidationError("latency_spike needs extra_latency > 0")
        if self.kind == "clock_skew" and self.skew == 0.0:
            raise ValidationError("clock_skew needs a non-zero skew")

    def to_dict(self) -> dict:
        """Minimal JSON-ready form: defaults are omitted."""
        defaults = FaultEvent.__dataclass_fields__
        out: dict = {}
        for key, value in asdict(self).items():
            if key in ("kind", "at"):
                out[key] = value
                continue
            default = defaults[key].default
            if isinstance(value, tuple):
                if value:
                    out[key] = list(value)
            elif value != default:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        if not isinstance(data, dict):
            raise ValidationError(f"fault event must be an object, got {type(data).__name__}")
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ValidationError(
                f"unknown fault event field(s): {sorted(unknown)} (known: {sorted(known)})")
        if "kind" not in data or "at" not in data:
            raise ValidationError("fault event needs 'kind' and 'at'")
        coerced = dict(data)
        for key in ("targets", "group_a", "group_b"):
            if key in coerced:
                value = coerced[key]
                if isinstance(value, str) or not isinstance(value, Sequence):
                    raise ValidationError(f"{key} must be a list of addresses/patterns")
                coerced[key] = tuple(str(item) for item in value)
        return cls(**coerced)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, validated failure timeline."""

    events: tuple[FaultEvent, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise ValidationError(
                    f"FaultPlan events must be FaultEvent, got {type(event).__name__}")

    def __len__(self) -> int:
        return len(self.events)

    def duration(self) -> float:
        """Last scripted instant (onset or reversal) in the plan."""
        times = [e.at for e in self.events] + [
            e.until for e in self.events if e.until is not None
        ]
        return max(times) if times else 0.0

    def shifted(self, offset: float) -> "FaultPlan":
        """The same plan translated ``offset`` seconds later."""
        return FaultPlan(
            events=tuple(
                replace(
                    event,
                    at=event.at + offset,
                    until=None if event.until is None else event.until + offset,
                )
                for event in self.events
            ),
            name=self.name,
        )

    def to_dict(self) -> dict:
        out: dict = {"events": [event.to_dict() for event in self.events]}
        if self.name:
            out["name"] = self.name
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ValidationError(f"fault plan must be an object, got {type(data).__name__}")
        unknown = set(data) - {"events", "name"}
        if unknown:
            raise ValidationError(f"unknown fault plan field(s): {sorted(unknown)}")
        events = data.get("events", [])
        if not isinstance(events, list):
            raise ValidationError("fault plan 'events' must be a list")
        return cls(
            events=tuple(FaultEvent.from_dict(event) for event in events),
            name=str(data.get("name", "")),
        )


# -- constructors (the DSL surface) -----------------------------------------------


def partition(group_a: Sequence[str], group_b: Sequence[str], at: float,
              heal_at: Optional[float] = None, symmetric: bool = True) -> FaultEvent:
    """Sever the two groups at ``at``; ``heal_at`` restores the link."""
    return FaultEvent(kind="partition", at=at, until=heal_at,
                      group_a=tuple(group_a), group_b=tuple(group_b),
                      symmetric=symmetric)


def link_degrade(group_a: Sequence[str], group_b: Sequence[str], at: float,
                 until: Optional[float] = None, loss: float = 0.0,
                 duplicate: float = 0.0, reorder: float = 0.0,
                 extra_latency: float = 0.0, symmetric: bool = True) -> FaultEvent:
    """Lossy/duplicating/reordering delivery on every a→b link."""
    return FaultEvent(kind="link_degrade", at=at, until=until,
                      group_a=tuple(group_a), group_b=tuple(group_b),
                      symmetric=symmetric, loss=loss, duplicate=duplicate,
                      reorder=reorder, extra_latency=extra_latency)


def latency_spike(group_a: Sequence[str], group_b: Sequence[str], at: float,
                  extra_latency: float, until: Optional[float] = None,
                  symmetric: bool = True) -> FaultEvent:
    """Add a flat latency penalty on every a→b link."""
    return FaultEvent(kind="latency_spike", at=at, until=until,
                      group_a=tuple(group_a), group_b=tuple(group_b),
                      symmetric=symmetric, extra_latency=extra_latency)


def crash(target: str, at: float, restart_at: Optional[float] = None) -> FaultEvent:
    """Kill ``target`` (address or pattern) at ``at``; optionally restart."""
    return FaultEvent(kind="crash", at=at, until=restart_at, targets=(target,))


def restart(target: str, at: float) -> FaultEvent:
    """Bring a previously crashed ``target`` back at ``at``."""
    return FaultEvent(kind="restart", at=at, targets=(target,))


def clock_skew(target: str, skew: float, at: float,
               until: Optional[float] = None) -> FaultEvent:
    """Skew ``target``'s local clock by ``skew`` seconds from ``at``."""
    return FaultEvent(kind="clock_skew", at=at, until=until,
                      targets=(target,), skew=skew)


__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "partition",
    "link_degrade",
    "latency_spike",
    "crash",
    "restart",
    "clock_skew",
]
