"""Fault-injection plane: scripted chaos for the monitored federation.

Three pieces (chapter: ``docs/faults.md``):

- :mod:`repro.faults.plan` — the declarative :class:`FaultPlan` DSL
  (partitions, link degradation, latency spikes, crash/restart, clock
  skew), pure data that validates and round-trips through JSON;
- :mod:`repro.faults.chaos` — the :class:`ChaosController` that executes
  a plan against a live stack, mapping crash targets to real
  component semantics (PDP shards, PRP replicas, chain nodes, plain
  hosts);
- :mod:`repro.faults.recovery` — the :class:`RecoveryRecorder` that
  turns a chaos run into SLOs: time-to-recover per component, decisions
  lost vs re-routed, fault windows for alert attribution.

Typical use::

    from repro.faults import FaultPlan, crash, partition

    plan = FaultPlan(name="storm", events=(
        partition(["pep@tenant-2"], ["pdp-0@*"], at=0.6, heal_at=1.8),
        crash("pdp-1@*", at=2.2, restart_at=3.0),
    ))
    controller = stack.inject_faults(plan)
    stack.run(until=12.0)
    report = controller.recorder.slos()
"""

from repro.faults.chaos import ChaosController
from repro.faults.plan import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    clock_skew,
    crash,
    latency_spike,
    link_degrade,
    partition,
    restart,
)
from repro.faults.recovery import RecoveryRecorder

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "ChaosController",
    "RecoveryRecorder",
    "partition",
    "link_degrade",
    "latency_spike",
    "crash",
    "restart",
    "clock_skew",
]
