"""Policy distribution plane: replicated PRPs with versioned propagation.

Turns the PRP singleton into a deployment choice, the way
:mod:`repro.accesscontrol.plane` did for the PDP: consumers (PDP shards,
the DRAMS Analyser) are wired against a :class:`PolicyDistributionPlane`,
and the plane decides whether they share one store
(:class:`SingleStorePlane`, bit-identical to the hard-wired topology) or
each own a propagation-fed replica (:class:`ReplicatedPrpPlane`) whose
version skew the monitoring pipeline observes and classifies.
"""

from repro.policydist.plane import (
    PolicyDistributionPlane,
    ReplicatedPrpPlane,
    SingleStorePlane,
    as_policy_plane,
)
from repro.policydist.replica import PrpReplica

__all__ = [
    "PolicyDistributionPlane",
    "ReplicatedPrpPlane",
    "SingleStorePlane",
    "as_policy_plane",
    "PrpReplica",
]
