"""The policy distribution plane: how policy consumers reach the PRP.

The paper's federation has one logical PRP; after PR 3 sharded the
decision plane, that store was the last unreplicated singleton — every
PDP replica and the DRAMS Analyser read policy from the *same* in-process
object, so policy publishes were instantaneous and race-free, a condition
no real federation enjoys.  This module makes the choice explicit, the
same way :mod:`repro.accesscontrol.plane` did for the PDP: components are
constructed against a :class:`PolicyDistributionPlane` handle, and the
plane decides how many PRP replicas exist and how publishes reach them.

Two backends ship:

- :class:`SingleStorePlane` — one shared
  :class:`~repro.accesscontrol.prp.PolicyRetrievalPoint` handed to every
  consumer.  Deploying the default stack through it is bit-identical to
  the previous hard-wired wiring (same objects, no extra hosts, no extra
  events).
- :class:`ReplicatedPrpPlane` — each consumer owns a
  :class:`~repro.policydist.replica.PrpReplica` fed by simnet-delivered
  publish messages with configurable propagation delay/jitter, plus
  periodic anti-entropy (version-vector pull against the origin) so
  dropped publishes converge.  Version skew between replicas becomes
  *observable*: a PDP shard may evaluate under version ``k`` while the
  head is already ``k+1``, which is exactly the honest churn the
  version-stamped monitoring pipeline must tell apart from tampering.

The **authority** store is the publisher's own view: the PAP publishes
into it (so change-impact analysis always runs against the publisher's
current version, never a stale replica's) and anti-entropy treats it as
the source of truth.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.accesscontrol.prp import PolicyRetrievalPoint, PolicyVersion
from repro.common.errors import ValidationError
from repro.policydist.replica import PrpReplica
from repro.simnet.network import Host, Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.federation import Federation


class PolicyDistributionPlane:
    """Abstract handle: who stores policy, and how publishes travel."""

    def deploy(self, federation: "Federation") -> "PolicyDistributionPlane":
        """Create the plane's stores/hosts on ``federation`` (idempotent)."""
        raise NotImplementedError

    @property
    def authority(self) -> PolicyRetrievalPoint:
        """The publisher-side store (the PAP binds here)."""
        raise NotImplementedError

    def retrieval_point_for(self, consumer: str) -> PolicyRetrievalPoint:
        """The PRP handle ``consumer`` (a PDP shard, the Analyser) reads."""
        raise NotImplementedError

    def replicas(self) -> dict[str, PolicyRetrievalPoint]:
        """Consumer name → store, for inspection (may alias ``authority``)."""
        return {}

    def converged(self) -> bool:
        """True when every consumer's head matches the authority head."""
        head = self.authority.version_count()
        fingerprint = self.authority.current().fingerprint if head else ""
        for store in self.replicas().values():
            if store.version_count() != head:
                return False
            if head and store.current().fingerprint != fingerprint:
                return False
        return True

    def describe(self) -> dict:
        return {"kind": type(self).__name__, "replicas": len(self.replicas())}

    def stats(self) -> dict:
        return {"versions": self.authority.version_count()}

    def start(self) -> None:
        """(Re-)arm periodic work (anti-entropy timers); no-op if running."""

    def stop(self) -> None:
        """Cancel periodic work (anti-entropy timers)."""


class SingleStorePlane(PolicyDistributionPlane):
    """Today's topology: one shared store, every consumer aliases it."""

    def __init__(self, store: Optional[PolicyRetrievalPoint] = None) -> None:
        self._store = store if store is not None else PolicyRetrievalPoint()
        self._consumers: list[str] = []

    def deploy(self, federation: "Federation") -> "SingleStorePlane":
        return self

    @property
    def authority(self) -> PolicyRetrievalPoint:
        return self._store

    def retrieval_point_for(self, consumer: str) -> PolicyRetrievalPoint:
        if consumer not in self._consumers:
            self._consumers.append(consumer)
        return self._store

    def replicas(self) -> dict[str, PolicyRetrievalPoint]:
        return {consumer: self._store for consumer in self._consumers}

    def converged(self) -> bool:
        return True  # one store: nothing to lag

    def describe(self) -> dict:
        summary = super().describe()
        summary["consumers"] = list(self._consumers)
        return summary


class _PrpOriginHost(Host):
    """The authority's network face: fans publishes out, serves pulls."""

    def __init__(self, plane: "ReplicatedPrpPlane", address: str) -> None:
        super().__init__(plane._federation.network, address)
        self.plane = plane
        self.pulls_served = 0
        self.sync_records_sent = 0

    def receive(self, message: Message) -> None:
        if message.kind != "prp_pull":
            return
        vector = dict(message.payload.get("vector", {}))
        have = int(vector.get(self.address, 0))
        missing = self.plane.authority.history()[have:]
        if not missing:
            return
        self.pulls_served += 1
        self.sync_records_sent += len(missing)
        self.send(
            message.src,
            "prp_sync",
            {"records": [version.to_record() for version in missing]},
        )


class _PrpReplicaHost(Host):
    """One replica's network face: applies publishes and sync batches."""

    def __init__(self, plane: "ReplicatedPrpPlane", address: str, replica: PrpReplica) -> None:
        super().__init__(plane._federation.network, address)
        self.plane = plane
        self.replica = replica
        #: Fault-plane crash state: while crashed the host is off the
        #: network and its anti-entropy timer (which keeps firing) no-ops.
        self.crashed = False

    def receive(self, message: Message) -> None:
        if message.kind == "prp_publish":
            self.replica.apply_record(message.payload["record"])
        elif message.kind == "prp_sync":
            for record in message.payload["records"]:
                self.replica.apply_record(record)
        else:
            return
        tracer = self.network.telemetry
        if tracer is not None:
            # Policy propagation markers on the replica's own timeline —
            # how churn windows line up with decision traces.
            tracer.instant("prp.apply", self.address, category="policy",
                           attrs={"kind": message.kind,
                                  "versions": self.replica.version_count()})

    def pull(self) -> None:
        """Anti-entropy: ask the origin for everything past our vector."""
        if self.crashed:
            return
        self.send(self.plane.origin_address, "prp_pull", {"vector": self.replica.version_vector()})


class ReplicatedPrpPlane(PolicyDistributionPlane):
    """One PRP replica per consumer, converging on the authority store.

    ``propagation_delay`` (+ uniform ``propagation_jitter``) models how
    long a publish takes to reach each replica, sampled independently per
    replica so deliveries reorder.  ``publish_loss_rate`` drops the direct
    fan-out message with that probability (the replica then converges via
    anti-entropy only).  ``anti_entropy_interval`` is the version-vector
    pull period; ``0`` disables pulls, leaving convergence to the direct
    fan-out alone.

    Replicas bootstrap with a synchronous snapshot of the authority's
    history at provisioning time (a new replica pulls the full store
    before serving), so delay and jitter shape *subsequent* publishes —
    the mid-traffic churn the E12 experiment measures.
    """

    def __init__(
        self,
        propagation_delay: float = 0.05,
        propagation_jitter: float = 0.02,
        anti_entropy_interval: float = 1.0,
        publish_loss_rate: float = 0.0,
    ) -> None:
        if propagation_delay < 0 or propagation_jitter < 0:
            raise ValidationError("propagation delay/jitter must be >= 0")
        if anti_entropy_interval < 0:
            raise ValidationError("anti_entropy_interval must be >= 0 (0 disables)")
        if not 0.0 <= publish_loss_rate <= 1.0:
            raise ValidationError(f"publish_loss_rate must be in [0, 1], got {publish_loss_rate}")
        self.propagation_delay = propagation_delay
        self.propagation_jitter = propagation_jitter
        self.anti_entropy_interval = anti_entropy_interval
        self.publish_loss_rate = publish_loss_rate
        self.publishes_sent = 0
        self.publishes_dropped = 0
        self._federation: Optional["Federation"] = None
        self._authority: Optional[PolicyRetrievalPoint] = None
        self._origin: Optional[_PrpOriginHost] = None
        self._hosts: dict[str, _PrpReplicaHost] = {}
        self._stoppers: list = []
        self._rng = None
        #: Anti-entropy timers run from deployment; ``stop()``/``start()``
        #: toggle them (DramsSystem wires both into its own lifecycle).
        self._running = True

    # -- deployment ---------------------------------------------------------------

    def deploy(self, federation: "Federation") -> "ReplicatedPrpPlane":
        if self._federation is not None:
            if self._federation is not federation:
                raise ValidationError("ReplicatedPrpPlane is already deployed on another federation")
            return self
        self._federation = federation
        self._rng = federation.rng.fork("policydist")
        self._authority = PolicyRetrievalPoint()
        infra = federation.infrastructure_tenant
        self._origin = _PrpOriginHost(self, infra.address("prp"))
        infra.register_host(self._origin.address)
        self._authority.on_publish(self._fan_out)
        return self

    def _require_deployed(self) -> "Federation":
        if self._federation is None:
            raise ValidationError(
                "ReplicatedPrpPlane is not deployed; call deploy(federation) first"
            )
        return self._federation

    @property
    def authority(self) -> PolicyRetrievalPoint:
        self._require_deployed()
        return self._authority

    @property
    def origin_address(self) -> str:
        self._require_deployed()
        return self._origin.address

    def retrieval_point_for(self, consumer: str) -> PolicyRetrievalPoint:
        federation = self._require_deployed()
        host = self._hosts.get(consumer)
        if host is not None:
            return host.replica
        infra = federation.infrastructure_tenant
        replica = PrpReplica(origin_id=self._origin.address, consumer=consumer)
        host = _PrpReplicaHost(self, infra.address(f"prp-{consumer}"), replica)
        infra.register_host(host.address)
        self._hosts[consumer] = host
        # Provisioning snapshot: a fresh replica syncs the full history
        # before it starts serving its consumer.
        for version in self._authority.history():
            replica.apply_record(version.to_record())
        if self._running:
            self._arm_anti_entropy(consumer, host)
        return replica

    def _arm_anti_entropy(self, consumer: str, host: "_PrpReplicaHost") -> None:
        if self.anti_entropy_interval <= 0:
            return
        rng = self._rng
        self._stoppers.append(
            self._federation.sim.every(
                self.anti_entropy_interval,
                host.pull,
                label=f"prp-anti-entropy:{consumer}",
                jitter=lambda: rng.uniform(0, self.anti_entropy_interval * 0.1),
            )
        )

    def consumer_at(self, address: str) -> Optional[str]:
        """The consumer whose replica host sits at ``address``, if any."""
        for consumer, host in self._hosts.items():
            if host.address == address:
                return consumer
        return None

    def replica_addresses(self) -> list[str]:
        """Replica host addresses (attached or crashed), sorted."""
        return sorted(host.address for host in self._hosts.values())

    # -- crash / restart (fault plane) ---------------------------------------------

    def crash_replica(self, consumer: str) -> PrpReplica:
        """Abruptly kill one replica's host process.

        The replica drops off the network (publishes and sync batches in
        flight toward it die at the fabric) and loses its in-memory
        staging buffer for out-of-order records; the *applied* version
        history is the consumer's durable store and survives, which is
        exactly the re-bootstrap contract anti-entropy was built for.
        """
        federation = self._require_deployed()
        host = self._hosts.get(consumer)
        if host is None:
            raise ValidationError(f"no PRP replica for consumer {consumer!r}")
        if host.crashed:
            return host.replica
        host.crashed = True
        host.replica.lose_staged()
        federation.network.detach(host.address)
        return host.replica

    def restart_replica(self, consumer: str) -> PrpReplica:
        """Bring a crashed replica back and converge it immediately.

        Re-attaches under a fresh incarnation and issues one eager
        version-vector pull, so recovery does not wait out a full
        anti-entropy interval; the origin answers with exactly the suffix
        published during the outage.
        """
        federation = self._require_deployed()
        host = self._hosts.get(consumer)
        if host is None:
            raise ValidationError(f"no PRP replica for consumer {consumer!r}")
        if not host.crashed:
            return host.replica
        federation.network.attach(host)
        host.crashed = False
        host.pull()
        return host.replica

    # -- publish propagation --------------------------------------------------------

    def _fan_out(self, version: PolicyVersion) -> None:
        record = version.to_record()
        sim = self._federation.sim
        for consumer in sorted(self._hosts):
            host = self._hosts[consumer]
            if self.publish_loss_rate > 0 and self._rng.random() < self.publish_loss_rate:
                self.publishes_dropped += 1
                continue
            delay = self.propagation_delay + self._rng.uniform(0, self.propagation_jitter)
            self.publishes_sent += 1
            sim.schedule(
                delay,
                lambda host=host, record=record: self._origin.send(
                    host.address, "prp_publish", {"record": record}
                ),
                label=f"prp-publish:{consumer}:v{record['version']}",
            )

    # -- inspection ------------------------------------------------------------------

    def replicas(self) -> dict[str, PolicyRetrievalPoint]:
        return {consumer: host.replica for consumer, host in self._hosts.items()}

    def describe(self) -> dict:
        summary = super().describe()
        summary.update(
            {
                "propagation_delay": self.propagation_delay,
                "propagation_jitter": self.propagation_jitter,
                "anti_entropy_interval": self.anti_entropy_interval,
                "publish_loss_rate": self.publish_loss_rate,
                "consumers": sorted(self._hosts),
            }
        )
        return summary

    def stats(self) -> dict:
        return {
            "versions": self.authority.version_count(),
            "publishes_sent": self.publishes_sent,
            "publishes_dropped": self.publishes_dropped,
            "pulls_served": self._origin.pulls_served if self._origin else 0,
            "sync_records_sent": self._origin.sync_records_sent if self._origin else 0,
            "replicas": {
                consumer: host.replica.stats()
                for consumer, host in sorted(self._hosts.items())
            },
        }

    def start(self) -> None:
        """Re-arm anti-entropy for every replica after a :meth:`stop`."""
        if self._running:
            return
        self._running = True
        for consumer in sorted(self._hosts):
            self._arm_anti_entropy(consumer, self._hosts[consumer])

    def stop(self) -> None:
        self._running = False
        for stopper in self._stoppers:
            stopper()
        self._stoppers.clear()


def as_policy_plane(plane_or_store) -> PolicyDistributionPlane:
    """Normalise a policy-plane handle.

    Components accept either a :class:`PolicyDistributionPlane` or a bare
    :class:`PolicyRetrievalPoint` (the pre-plane calling convention); a
    bare store is adopted into a :class:`SingleStorePlane`, which keeps
    manual wiring bit-identical to the hard-wired topology.
    """
    if isinstance(plane_or_store, PolicyDistributionPlane):
        return plane_or_store
    if isinstance(plane_or_store, PolicyRetrievalPoint):
        return SingleStorePlane(store=plane_or_store)
    raise ValidationError(
        "expected a PolicyDistributionPlane or PolicyRetrievalPoint, got "
        f"{type(plane_or_store).__name__}"
    )
