"""A propagation-fed PRP replica.

One :class:`PrpReplica` sits next to each policy consumer (a PDP shard,
the Analyser) when the federation deploys a
:class:`~repro.policydist.plane.ReplicatedPrpPlane`.  It is read-only from
the consumer's side — local ``publish`` is rejected, versions arrive as
*records* (:meth:`~repro.accesscontrol.prp.PolicyVersion.to_record`)
delivered by the distribution plane — and append-only like its base class,
so everything downstream (decision caches bound via ``on_publish``, the
Analyser's version history) works unchanged against a replica.

Delivery is tolerant of the federation network's realities:

- **out-of-order** records (propagation jitter reorders publishes) are
  staged until the gap closes, so listeners always observe versions in
  order;
- **duplicate** records (anti-entropy re-delivers what the direct publish
  already brought) are ignored;
- **tampered** records are rejected: the fingerprint travels with the
  document, and a record whose document does not hash back to its claimed
  fingerprint raises — altering a policy in flight is detectable, which
  pushes the attacker to compromise the replica itself (the
  ``TamperedPrpReplicaAttack`` threat, caught downstream by the Analyser's
  fingerprint audit).

``frozen`` is the threat-model hook for a *suppressed* replica: a
compromised replica that silently stops applying new versions keeps
serving the superseded policy (the ``StalePolicyReplayAttack``).  The
monitor catches this through version-stamped decisions, not through the
replica itself.
"""

from __future__ import annotations

from repro.accesscontrol.prp import PolicyRetrievalPoint, PolicyVersion
from repro.common.errors import ValidationError


class PrpReplica(PolicyRetrievalPoint):
    """Read-only PRP view, fed by the policy distribution plane."""

    def __init__(self, origin_id: str, consumer: str = "") -> None:
        super().__init__()
        self.origin_id = origin_id
        self.consumer = consumer
        #: Threat hook: a frozen replica silently drops every delivery and
        #: keeps serving its last-applied version (stale-policy replay).
        self.frozen = False
        self.records_applied = 0
        self.records_staged = 0
        self.records_duplicate = 0
        self._staged: dict[int, PolicyVersion] = {}

    # -- consumer side ----------------------------------------------------------

    def publish(self, document: dict, publisher: str, published_at: float = 0.0) -> PolicyVersion:
        raise ValidationError(
            f"PRP replica {self.consumer or self.origin_id!r} is read-only; "
            "publish through the PAP against the distribution plane's "
            "authority store"
        )

    def version_vector(self) -> dict[str, int]:
        """What this replica has applied, keyed by origin store.

        With a single authoritative publisher the vector degenerates to
        one counter; anti-entropy pulls send it so the origin can compute
        exactly the missing suffix.
        """
        return {self.origin_id: self.version_count()}

    # -- distribution side --------------------------------------------------------

    def apply_record(self, record: dict) -> bool:
        """Install one delivered version record; returns True if the head moved.

        Validates the fingerprint, stages out-of-order deliveries and
        drains the stage in version order, so ``on_publish`` listeners
        (decision-cache flushes, the Analyser's history) observe the same
        ordered sequence a single store would have produced.
        """
        if self.frozen:
            return False
        try:
            number = int(record["version"])
            document = record["document"]
            claimed = record["fingerprint"]
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed policy record: {exc}") from exc
        if number <= self.version_count():
            self.records_duplicate += 1
            return False
        version = PolicyVersion(
            version=number,
            document=dict(document),
            published_at=float(record.get("published_at", 0.0)),
            publisher=str(record.get("publisher", "")),
        )
        if version.fingerprint != claimed:
            raise ValidationError(
                f"policy record for version {number} failed its fingerprint "
                f"check (claimed {claimed[:12]}, computed "
                f"{version.fingerprint[:12]}): document altered in flight"
            )
        self._staged[number] = version
        self.records_staged += 1
        moved = False
        while self.version_count() + 1 in self._staged:
            self._install(self._staged.pop(self.version_count() + 1))
            self.records_applied += 1
            moved = True
        return moved

    def lose_staged(self) -> int:
        """Drop the in-memory staging buffer (process crash); returns count.

        Staged records are out-of-order deliveries waiting for their gap
        to close — pure process memory, unlike the applied history, which
        models the consumer's durable store.  The fault plane calls this
        on a replica-host crash; anti-entropy re-fetches whatever was
        lost, so convergence is delayed, never broken.
        """
        lost = len(self._staged)
        self._staged.clear()
        return lost

    def stats(self) -> dict:
        return {
            "consumer": self.consumer,
            "versions": self.version_count(),
            "head_fingerprint": (self.current().fingerprint if self.version_count() else ""),
            "applied": self.records_applied,
            "staged_waiting": len(self._staged),
            "duplicates": self.records_duplicate,
            "frozen": self.frozen,
        }
