"""Request/response contexts and the decision algebra.

XACML 3.0 decisions are four-valued — Permit, Deny, NotApplicable,
Indeterminate — with Indeterminate refined into D/P/DP variants describing
which decisions the error could have masked.  The combining algorithms in
:mod:`repro.xacml.combining` operate over this extended algebra.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.common.errors import PolicyError
from repro.xacml.attributes import Bag, Category, DataType


class Decision(Enum):
    """Extended XACML decision values."""

    PERMIT = "Permit"
    DENY = "Deny"
    NOT_APPLICABLE = "NotApplicable"
    INDETERMINATE = "Indeterminate"
    INDETERMINATE_P = "Indeterminate{P}"
    INDETERMINATE_D = "Indeterminate{D}"
    INDETERMINATE_DP = "Indeterminate{DP}"

    def is_indeterminate(self) -> bool:
        return self in _INDETERMINATES

    def collapse(self) -> "Decision":
        """Map extended indeterminates onto plain Indeterminate.

        The wire format between PEP and PDP uses the four base values, as
        the XACML response context does.
        """
        if self in _INDETERMINATES:
            return Decision.INDETERMINATE
        return self


_INDETERMINATES = {
    Decision.INDETERMINATE,
    Decision.INDETERMINATE_P,
    Decision.INDETERMINATE_D,
    Decision.INDETERMINATE_DP,
}


class StatusCode:
    """XACML status codes attached to responses."""

    OK = "urn:oasis:names:tc:xacml:1.0:status:ok"
    MISSING_ATTRIBUTE = "urn:oasis:names:tc:xacml:1.0:status:missing-attribute"
    PROCESSING_ERROR = "urn:oasis:names:tc:xacml:1.0:status:processing-error"
    SYNTAX_ERROR = "urn:oasis:names:tc:xacml:1.0:status:syntax-error"


@dataclass(frozen=True)
class Obligation:
    """An action the PEP must discharge when enforcing the decision."""

    obligation_id: str
    fulfill_on: str  # "Permit" or "Deny"
    attributes: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "obligation_id": self.obligation_id,
            "fulfill_on": self.fulfill_on,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Obligation":
        return cls(
            obligation_id=data["obligation_id"],
            fulfill_on=data["fulfill_on"],
            attributes=dict(data.get("attributes", {})),
        )


class RequestContext:
    """The attribute sets of one access request.

    Construction is category-keyed:

    >>> request = RequestContext.of(
    ...     subject={"subject-id": "alice", "role": ["doctor", "researcher"]},
    ...     resource={"resource-id": "record-42", "type": "medical-record"},
    ...     action={"action-id": "read"},
    ... )
    """

    def __init__(self) -> None:
        self._attributes: dict[str, dict[str, Bag]] = {c: {} for c in Category.ALL}

    @classmethod
    def of(cls, subject: dict | None = None, resource: dict | None = None,
           action: dict | None = None, environment: dict | None = None) -> "RequestContext":
        request = cls()
        for category, mapping in (
            (Category.SUBJECT, subject),
            (Category.RESOURCE, resource),
            (Category.ACTION, action),
            (Category.ENVIRONMENT, environment),
        ):
            for attribute_id, value in (mapping or {}).items():
                request.add(category, attribute_id, value)
        return request

    def add(self, category: str, attribute_id: str, value: Any) -> "RequestContext":
        """Add value(s) for an attribute; lists become multi-valued bags."""
        category = Category.expand(category)
        values = value if isinstance(value, list) else [value]
        if not values:
            return self
        data_type = DataType.infer(values[0])
        existing = self._attributes[category].get(attribute_id)
        if existing is not None:
            if existing.data_type != data_type:
                raise PolicyError(
                    f"attribute {attribute_id!r} already has type {existing.data_type}")
            existing.values.extend(DataType.check(data_type, v) for v in values)
        else:
            self._attributes[category][attribute_id] = Bag(data_type, values)
        return self

    def bag(self, category: str, attribute_id: str, data_type: str | None = None) -> Bag:
        """The (possibly empty) bag for an attribute."""
        category = Category.expand(category)
        bag = self._attributes[category].get(attribute_id)
        if bag is None:
            return Bag.empty(data_type or DataType.STRING)
        return bag

    def categories(self) -> dict[str, dict[str, Bag]]:
        return self._attributes

    def to_dict(self) -> dict:
        """Canonical plain-data form (used for hashing and wire transfer)."""
        out: dict[str, dict[str, list]] = {}
        for category, attributes in sorted(self._attributes.items()):
            if not attributes:
                continue
            short = Category.shorten(category)
            out[short] = {aid: sorted(bag.values, key=repr)
                          for aid, bag in sorted(attributes.items())}
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RequestContext":
        request = cls()
        for category, attributes in data.items():
            for attribute_id, values in attributes.items():
                request.add(category, attribute_id, list(values))
        return request

    def __repr__(self) -> str:
        return f"RequestContext({self.to_dict()!r})"


@dataclass
class ResponseContext:
    """The PDP's answer: decision, status, obligations."""

    decision: Decision
    status_code: str = StatusCode.OK
    status_message: str = ""
    obligations: list[Obligation] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "decision": self.decision.collapse().value,
            "status_code": self.status_code,
            "status_message": self.status_message,
            "obligations": [ob.to_dict() for ob in self.obligations],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResponseContext":
        return cls(
            decision=Decision(data["decision"]),
            status_code=data.get("status_code", StatusCode.OK),
            status_message=data.get("status_message", ""),
            obligations=[Obligation.from_dict(ob) for ob in data.get("obligations", [])],
        )
