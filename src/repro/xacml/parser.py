"""JSON (de)serialization of policies, expressions and requests.

The Policy Retrieval Point stores policies in this JSON form; the Analyser
loads the same documents to build its independent logical representation —
so the serialization is the system's single source of policy truth.

Expression encoding:

- ``{"literal": v, "data_type": t}``
- ``{"designator": {"category", "attribute_id", "data_type", "must_be_present"}}``
- ``{"apply": name, "arguments": [...]}``
"""

from __future__ import annotations

from typing import Union

from repro.common.errors import PolicyError
from repro.xacml.attributes import Category, DataType
from repro.xacml.context import Obligation, RequestContext
from repro.xacml.expressions import Apply, AttributeDesignator, Expression, Literal
from repro.xacml.policy import AllOf, AnyOf, Effect, Match, Policy, PolicySet, Rule, Target

PolicyElement = Union[Policy, PolicySet]


# -- expressions -------------------------------------------------------------

def expression_to_dict(expr: Expression) -> dict:
    return expr.to_dict()


def expression_from_dict(data: dict) -> Expression:
    if not isinstance(data, dict):
        raise PolicyError(f"expression must be a dict, got {type(data).__name__}")
    if "literal" in data:
        return Literal(value=data["literal"],
                       data_type=data.get("data_type", ""))
    if "designator" in data:
        spec = data["designator"]
        try:
            return AttributeDesignator(
                category=spec["category"],
                attribute_id=spec["attribute_id"],
                data_type=spec.get("data_type", DataType.STRING),
                must_be_present=bool(spec.get("must_be_present", False)),
            )
        except KeyError as exc:
            raise PolicyError(f"designator missing field: {exc}") from exc
    if "apply" in data:
        return Apply(
            function=data["apply"],
            arguments=tuple(expression_from_dict(arg)
                            for arg in data.get("arguments", [])),
        )
    raise PolicyError(f"unrecognised expression: {sorted(data.keys())}")


# -- targets --------------------------------------------------------------------

def _match_to_dict(match: Match) -> dict:
    return {
        "function": match.function,
        "value": match.value,
        "category": Category.shorten(match.designator.category),
        "attribute_id": match.designator.attribute_id,
        "data_type": match.designator.data_type,
    }


def _match_from_dict(data: dict) -> Match:
    try:
        designator = AttributeDesignator(
            category=data["category"],
            attribute_id=data["attribute_id"],
            data_type=data.get("data_type", DataType.STRING),
        )
        return Match(function=data["function"], value=data["value"],
                     designator=designator)
    except KeyError as exc:
        raise PolicyError(f"match missing field: {exc}") from exc


def target_to_dict(target: Target) -> list:
    return [[[_match_to_dict(m) for m in all_of.matches]
             for all_of in any_of.all_ofs]
            for any_of in target.any_ofs]


def target_from_dict(data: list) -> Target:
    if data is None:
        return Target.match_all()
    any_ofs = tuple(
        AnyOf(all_ofs=tuple(
            AllOf(matches=tuple(_match_from_dict(m) for m in all_of))
            for all_of in any_of))
        for any_of in data)
    return Target(any_ofs=any_ofs)


# -- rules / policies / policy sets ---------------------------------------------

def _rule_to_dict(rule: Rule) -> dict:
    return {
        "rule_id": rule.rule_id,
        "effect": rule.effect.value,
        "target": target_to_dict(rule.target),
        "condition": expression_to_dict(rule.condition) if rule.condition else None,
        "description": rule.description,
    }


def _rule_from_dict(data: dict) -> Rule:
    try:
        condition = (expression_from_dict(data["condition"])
                     if data.get("condition") else None)
        return Rule(
            rule_id=data["rule_id"],
            effect=Effect(data["effect"]),
            target=target_from_dict(data.get("target")),
            condition=condition,
            description=data.get("description", ""),
        )
    except (KeyError, ValueError) as exc:
        raise PolicyError(f"malformed rule: {exc}") from exc


def policy_to_dict(element: PolicyElement) -> dict:
    """Serialize a Policy or PolicySet tree."""
    if isinstance(element, Policy):
        return {
            "kind": "policy",
            "policy_id": element.policy_id,
            "rule_combining": element.rule_combining,
            "target": target_to_dict(element.target),
            "rules": [_rule_to_dict(rule) for rule in element.rules],
            "obligations": [ob.to_dict() for ob in element.obligations],
            "description": element.description,
        }
    if isinstance(element, PolicySet):
        return {
            "kind": "policy_set",
            "policy_set_id": element.policy_set_id,
            "policy_combining": element.policy_combining,
            "target": target_to_dict(element.target),
            "children": [policy_to_dict(child) for child in element.children],
            "obligations": [ob.to_dict() for ob in element.obligations],
            "description": element.description,
        }
    raise PolicyError(f"not a policy element: {type(element).__name__}")


def policy_from_dict(data: dict) -> PolicyElement:
    """Deserialize a Policy or PolicySet tree."""
    kind = data.get("kind")
    try:
        if kind == "policy":
            return Policy(
                policy_id=data["policy_id"],
                rule_combining=data["rule_combining"],
                rules=[_rule_from_dict(rule) for rule in data["rules"]],
                target=target_from_dict(data.get("target")),
                obligations=[Obligation.from_dict(ob)
                             for ob in data.get("obligations", [])],
                description=data.get("description", ""),
            )
        if kind == "policy_set":
            return PolicySet(
                policy_set_id=data["policy_set_id"],
                policy_combining=data["policy_combining"],
                children=[policy_from_dict(child) for child in data["children"]],
                target=target_from_dict(data.get("target")),
                obligations=[Obligation.from_dict(ob)
                             for ob in data.get("obligations", [])],
                description=data.get("description", ""),
            )
    except KeyError as exc:
        raise PolicyError(f"malformed policy document: missing {exc}") from exc
    raise PolicyError(f"unknown policy kind: {kind!r}")


# -- requests --------------------------------------------------------------------

def request_to_dict(request: RequestContext) -> dict:
    return request.to_dict()


def request_from_dict(data: dict) -> RequestContext:
    return RequestContext.from_dict(data)
