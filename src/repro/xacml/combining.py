"""Combining algorithms (XACML 3.0 semantics, extended indeterminates).

Both rule- and policy-combining use the same decision algebra, so each
algorithm is written once over lists of :class:`Decision` values and
registered in both tables (except only-one-applicable, which is
policy-level only).

The implementations follow the normative pseudo-code of the XACML 3.0
specification, including the Indeterminate{D}/{P}/{DP} refinements — the
formal analyser replays these same rules symbolically, so fidelity here is
what makes decision-correctness checking meaningful.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.xacml.context import Decision

Combiner = Callable[[Sequence[Decision]], Decision]


def deny_overrides(decisions: Sequence[Decision]) -> Decision:
    """Deny wins; errors that could have denied taint the result."""
    saw_permit = False
    saw_ind_d = False
    saw_ind_p = False
    saw_ind_dp = False
    for decision in decisions:
        if decision is Decision.DENY:
            return Decision.DENY
        if decision is Decision.PERMIT:
            saw_permit = True
        elif decision is Decision.INDETERMINATE_D:
            saw_ind_d = True
        elif decision is Decision.INDETERMINATE_P:
            saw_ind_p = True
        elif decision in (Decision.INDETERMINATE_DP, Decision.INDETERMINATE):
            saw_ind_dp = True
    if saw_ind_dp:
        return Decision.INDETERMINATE_DP
    if saw_ind_d and (saw_ind_p or saw_permit):
        return Decision.INDETERMINATE_DP
    if saw_ind_d:
        return Decision.INDETERMINATE_D
    if saw_permit:
        return Decision.PERMIT
    if saw_ind_p:
        return Decision.INDETERMINATE_P
    return Decision.NOT_APPLICABLE


def permit_overrides(decisions: Sequence[Decision]) -> Decision:
    """Permit wins; errors that could have permitted taint the result."""
    saw_deny = False
    saw_ind_d = False
    saw_ind_p = False
    saw_ind_dp = False
    for decision in decisions:
        if decision is Decision.PERMIT:
            return Decision.PERMIT
        if decision is Decision.DENY:
            saw_deny = True
        elif decision is Decision.INDETERMINATE_D:
            saw_ind_d = True
        elif decision is Decision.INDETERMINATE_P:
            saw_ind_p = True
        elif decision in (Decision.INDETERMINATE_DP, Decision.INDETERMINATE):
            saw_ind_dp = True
    if saw_ind_dp:
        return Decision.INDETERMINATE_DP
    if saw_ind_p and (saw_ind_d or saw_deny):
        return Decision.INDETERMINATE_DP
    if saw_ind_p:
        return Decision.INDETERMINATE_P
    if saw_deny:
        return Decision.DENY
    if saw_ind_d:
        return Decision.INDETERMINATE_D
    return Decision.NOT_APPLICABLE


def first_applicable(decisions: Sequence[Decision]) -> Decision:
    """First child that is not NotApplicable decides."""
    for decision in decisions:
        if decision is Decision.NOT_APPLICABLE:
            continue
        if decision.is_indeterminate():
            return Decision.INDETERMINATE
        return decision
    return Decision.NOT_APPLICABLE


def only_one_applicable(decisions: Sequence[Decision]) -> Decision:
    """Exactly one child may be applicable, else Indeterminate.

    Approximation note: the normative algorithm inspects target
    applicability rather than evaluated decisions; treating NotApplicable
    children as inapplicable and everything else as applicable is the
    standard engine-level simplification (Indeterminate children make the
    result Indeterminate either way).
    """
    applicable: list[Decision] = []
    for decision in decisions:
        if decision is Decision.NOT_APPLICABLE:
            continue
        if decision.is_indeterminate():
            return Decision.INDETERMINATE
        applicable.append(decision)
        if len(applicable) > 1:
            return Decision.INDETERMINATE
    if not applicable:
        return Decision.NOT_APPLICABLE
    return applicable[0]


def deny_unless_permit(decisions: Sequence[Decision]) -> Decision:
    """Never NotApplicable/Indeterminate: Permit if any child permits."""
    for decision in decisions:
        if decision is Decision.PERMIT:
            return Decision.PERMIT
    return Decision.DENY


def permit_unless_deny(decisions: Sequence[Decision]) -> Decision:
    """Never NotApplicable/Indeterminate: Deny if any child denies."""
    for decision in decisions:
        if decision is Decision.DENY:
            return Decision.DENY
    return Decision.PERMIT


def adjust_for_target(combined: Decision) -> Decision:
    """Refine a combined decision when the enclosing target was Indeterminate.

    Per XACML 3.0: the element becomes Indeterminate with the potential of
    whatever the children could have produced.
    """
    if combined is Decision.PERMIT:
        return Decision.INDETERMINATE_P
    if combined is Decision.DENY:
        return Decision.INDETERMINATE_D
    if combined is Decision.NOT_APPLICABLE:
        return Decision.NOT_APPLICABLE
    return combined


RULE_COMBINING: dict[str, Combiner] = {
    "deny-overrides": deny_overrides,
    "permit-overrides": permit_overrides,
    "first-applicable": first_applicable,
    "deny-unless-permit": deny_unless_permit,
    "permit-unless-deny": permit_unless_deny,
}

POLICY_COMBINING: dict[str, Combiner] = {
    "deny-overrides": deny_overrides,
    "permit-overrides": permit_overrides,
    "first-applicable": first_applicable,
    "only-one-applicable": only_one_applicable,
    "deny-unless-permit": deny_unless_permit,
    "permit-unless-deny": permit_unless_deny,
}
