"""Typed expression language (XACML conditions and match functions).

Expressions form a small AST:

- :class:`Literal` — a typed constant,
- :class:`AttributeDesignator` — a bag lookup in the request context,
- :class:`Apply` — application of a named function from :data:`FUNCTIONS`.

Evaluation is total over well-formed inputs; type errors, missing mandatory
attributes and arity violations raise :class:`EvaluationError`, which the
rule evaluator converts into an Indeterminate decision — exactly the error
propagation XACML prescribes.
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import PolicyError
from repro.xacml.attributes import AttributeId, Bag, DataType
from repro.xacml.context import RequestContext


class EvaluationError(PolicyError):
    """An expression could not be evaluated (→ Indeterminate)."""

    def __init__(self, message: str, missing_attribute: bool = False) -> None:
        super().__init__(message)
        self.missing_attribute = missing_attribute


class Expression(ABC):
    """Base class of the expression AST."""

    @abstractmethod
    def evaluate(self, request: RequestContext) -> Any:
        """Return a value or a :class:`Bag`; raise :class:`EvaluationError`."""

    @abstractmethod
    def to_dict(self) -> dict:
        """JSON-serializable representation (see :mod:`repro.xacml.parser`)."""


@dataclass(frozen=True)
class Literal(Expression):
    """A typed constant."""

    value: Any
    data_type: str = ""

    def __post_init__(self) -> None:
        inferred = DataType.infer(self.value) if not self.data_type else self.data_type
        object.__setattr__(self, "data_type", inferred)
        DataType.check(inferred, self.value)

    def evaluate(self, request: RequestContext) -> Any:
        return self.value

    def to_dict(self) -> dict:
        return {"literal": self.value, "data_type": self.data_type}


@dataclass(frozen=True)
class AttributeDesignator(Expression):
    """A bag lookup: all values of an attribute in a category.

    ``must_be_present`` mirrors XACML's MustBePresent: an empty bag then
    raises a missing-attribute evaluation error instead of returning empty.
    """

    category: str
    attribute_id: str
    data_type: str = DataType.STRING
    must_be_present: bool = False

    def __post_init__(self) -> None:
        # Normalises short category names and validates them.
        object.__setattr__(self, "category",
                           AttributeId(self.category, self.attribute_id).category)

    def evaluate(self, request: RequestContext) -> Bag:
        bag = request.bag(self.category, self.attribute_id, self.data_type)
        if self.must_be_present and len(bag) == 0:
            raise EvaluationError(
                f"mandatory attribute {self.attribute_id!r} missing in request",
                missing_attribute=True)
        if len(bag) > 0 and bag.data_type != self.data_type:
            raise EvaluationError(
                f"attribute {self.attribute_id!r} has type {bag.data_type}, "
                f"designator expects {self.data_type}")
        return bag

    def to_dict(self) -> dict:
        from repro.xacml.attributes import Category

        return {
            "designator": {
                "category": Category.shorten(self.category),
                "attribute_id": self.attribute_id,
                "data_type": self.data_type,
                "must_be_present": self.must_be_present,
            }
        }


@dataclass(frozen=True)
class Apply(Expression):
    """Application of a named function to sub-expressions."""

    function: str
    arguments: tuple[Expression, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.function not in FUNCTIONS:
            raise PolicyError(f"unknown function: {self.function!r}")
        object.__setattr__(self, "arguments", tuple(self.arguments))

    def evaluate(self, request: RequestContext) -> Any:
        spec = FUNCTIONS[self.function]
        if spec.higher_order:
            return spec.implementation(self.arguments, request)
        values = [arg.evaluate(request) for arg in self.arguments]
        return spec.apply(self.function, values)

    def to_dict(self) -> dict:
        return {
            "apply": self.function,
            "arguments": [arg.to_dict() for arg in self.arguments],
        }


@dataclass(frozen=True)
class FunctionSpec:
    """Registered function: arity checking plus implementation."""

    name: str
    arity: int  # -1 for variadic
    implementation: Callable[..., Any]
    higher_order: bool = False

    def apply(self, name: str, values: list[Any]) -> Any:
        if self.arity >= 0 and len(values) != self.arity:
            raise EvaluationError(
                f"{name} expects {self.arity} arguments, got {len(values)}")
        return self.implementation(*values)


def _require(value: Any, data_type: str, context: str) -> Any:
    try:
        return DataType.check(data_type, value)
    except PolicyError as exc:
        raise EvaluationError(f"{context}: {exc}") from exc


def _numeric(value: Any, context: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise EvaluationError(f"{context}: {value!r} is not numeric")
    return value


FUNCTIONS: dict[str, FunctionSpec] = {}


def _register(name: str, arity: int, implementation: Callable[..., Any],
              higher_order: bool = False) -> None:
    if name in FUNCTIONS:
        raise PolicyError(f"duplicate function registration: {name}")
    FUNCTIONS[name] = FunctionSpec(name, arity, implementation, higher_order)


# -- equality and comparison ---------------------------------------------------

def _typed_equal(data_type: str) -> Callable[[Any, Any], bool]:
    def equal(a: Any, b: Any) -> bool:
        return (_require(a, data_type, "equal") == _require(b, data_type, "equal"))
    return equal


_register("string-equal", 2, _typed_equal(DataType.STRING))
_register("integer-equal", 2, _typed_equal(DataType.INTEGER))
_register("double-equal", 2, _typed_equal(DataType.DOUBLE))
_register("boolean-equal", 2, _typed_equal(DataType.BOOLEAN))
_register("time-equal", 2, _typed_equal(DataType.TIME))

_register("integer-greater-than", 2,
          lambda a, b: _numeric(a, "gt") > _numeric(b, "gt"))
_register("integer-greater-than-or-equal", 2,
          lambda a, b: _numeric(a, "gte") >= _numeric(b, "gte"))
_register("integer-less-than", 2,
          lambda a, b: _numeric(a, "lt") < _numeric(b, "lt"))
_register("integer-less-than-or-equal", 2,
          lambda a, b: _numeric(a, "lte") <= _numeric(b, "lte"))
_register("double-greater-than", 2,
          lambda a, b: _numeric(a, "gt") > _numeric(b, "gt"))
_register("double-less-than", 2,
          lambda a, b: _numeric(a, "lt") < _numeric(b, "lt"))
_register("time-in-range", 3,
          lambda t, lo, hi: _numeric(lo, "range") <= _numeric(t, "range")
          <= _numeric(hi, "range"))

# -- arithmetic ---------------------------------------------------------------

_register("integer-add", -1, lambda *xs: sum(int(_numeric(x, "add")) for x in xs))
_register("integer-subtract", 2,
          lambda a, b: int(_numeric(a, "sub")) - int(_numeric(b, "sub")))
_register("integer-multiply", -1,
          lambda *xs: __import__("math").prod(int(_numeric(x, "mul")) for x in xs))
_register("double-add", -1, lambda *xs: float(sum(_numeric(x, "add") for x in xs)))
_register("integer-mod", 2, lambda a, b: int(_numeric(a, "mod")) % int(_numeric(b, "mod")))
_register("integer-abs", 1, lambda a: abs(int(_numeric(a, "abs"))))

# -- boolean logic ----------------------------------------------------------------

def _boolean(value: Any, context: str) -> bool:
    if not isinstance(value, bool):
        raise EvaluationError(f"{context}: {value!r} is not boolean")
    return value


_register("and", -1, lambda *xs: all(_boolean(x, "and") for x in xs))
_register("or", -1, lambda *xs: any(_boolean(x, "or") for x in xs))
_register("not", 1, lambda x: not _boolean(x, "not"))
_register("n-of", -1, lambda n, *xs: sum(1 for x in xs if _boolean(x, "n-of"))
          >= int(_numeric(n, "n-of")))

# -- strings ----------------------------------------------------------------------

_register("string-concatenate", -1,
          lambda *xs: "".join(_require(x, DataType.STRING, "concat") for x in xs))
_register("string-starts-with", 2,
          lambda prefix, s: _require(s, DataType.STRING, "starts-with")
          .startswith(_require(prefix, DataType.STRING, "starts-with")))
_register("string-ends-with", 2,
          lambda suffix, s: _require(s, DataType.STRING, "ends-with")
          .endswith(_require(suffix, DataType.STRING, "ends-with")))
_register("string-contains", 2,
          lambda needle, s: _require(needle, DataType.STRING, "contains")
          in _require(s, DataType.STRING, "contains"))
_register("string-regexp-match", 2,
          lambda pattern, s: re.search(_require(pattern, DataType.STRING, "regexp"),
                                       _require(s, DataType.STRING, "regexp")) is not None)
_register("string-normalize-to-lower-case", 1,
          lambda s: _require(s, DataType.STRING, "lower").lower())

# -- bags ---------------------------------------------------------------------------

def _as_bag(value: Any, context: str) -> Bag:
    if not isinstance(value, Bag):
        raise EvaluationError(f"{context}: expected a bag, got {type(value).__name__}")
    return value


_register("one-and-only", 1, lambda bag: _as_bag(bag, "one-and-only").one_and_only())
_register("bag-size", 1, lambda bag: len(_as_bag(bag, "bag-size")))
_register("is-in", 2, lambda value, bag: value in _as_bag(bag, "is-in"))
_register("bag", -1, lambda *values: Bag.of(*values) if values else Bag.empty())


def _bag_intersection(a: Any, b: Any) -> Bag:
    bag_a, bag_b = _as_bag(a, "intersection"), _as_bag(b, "intersection")
    common = [v for v in bag_a if v in bag_b]
    return Bag(bag_a.data_type, common) if common else Bag.empty(bag_a.data_type)


def _bag_union(a: Any, b: Any) -> Bag:
    bag_a, bag_b = _as_bag(a, "union"), _as_bag(b, "union")
    merged = list(bag_a.values)
    merged.extend(v for v in bag_b if v not in merged)
    data_type = bag_a.data_type if len(bag_a) else bag_b.data_type
    return Bag(data_type, merged)


def _at_least_one_member_of(a: Any, b: Any) -> bool:
    bag_a, bag_b = _as_bag(a, "member-of"), _as_bag(b, "member-of")
    return any(v in bag_b for v in bag_a)


def _subset(a: Any, b: Any) -> bool:
    bag_a, bag_b = _as_bag(a, "subset"), _as_bag(b, "subset")
    return all(v in bag_b for v in bag_a)


_register("intersection", 2, _bag_intersection)
_register("union", 2, _bag_union)
_register("at-least-one-member-of", 2, _at_least_one_member_of)
_register("subset", 2, _subset)

# -- higher-order functions -----------------------------------------------------

def _resolve_predicate(expr: Expression) -> str:
    if not isinstance(expr, Literal) or expr.data_type != DataType.STRING:
        raise EvaluationError("higher-order function needs a function-name literal")
    name = expr.value
    if name not in FUNCTIONS or FUNCTIONS[name].higher_order:
        raise EvaluationError(f"not a first-order function: {name!r}")
    return name


def _any_of(arguments: tuple[Expression, ...], request: RequestContext) -> bool:
    """any-of(function, value, bag): does any bag element satisfy f(value, e)?"""
    if len(arguments) != 3:
        raise EvaluationError("any-of expects (function, value, bag)")
    name = _resolve_predicate(arguments[0])
    value = arguments[1].evaluate(request)
    bag = _as_bag(arguments[2].evaluate(request), "any-of")
    spec = FUNCTIONS[name]
    return any(_boolean(spec.apply(name, [value, element]), "any-of") for element in bag)


def _all_of(arguments: tuple[Expression, ...], request: RequestContext) -> bool:
    """all-of(function, value, bag): do all bag elements satisfy f(value, e)?"""
    if len(arguments) != 3:
        raise EvaluationError("all-of expects (function, value, bag)")
    name = _resolve_predicate(arguments[0])
    value = arguments[1].evaluate(request)
    bag = _as_bag(arguments[2].evaluate(request), "all-of")
    spec = FUNCTIONS[name]
    return all(_boolean(spec.apply(name, [value, element]), "all-of") for element in bag)


def _any_of_any(arguments: tuple[Expression, ...], request: RequestContext) -> bool:
    """any-of-any(function, bag_a, bag_b): some pair satisfies f(a, b)."""
    if len(arguments) != 3:
        raise EvaluationError("any-of-any expects (function, bag, bag)")
    name = _resolve_predicate(arguments[0])
    bag_a = _as_bag(arguments[1].evaluate(request), "any-of-any")
    bag_b = _as_bag(arguments[2].evaluate(request), "any-of-any")
    spec = FUNCTIONS[name]
    return any(_boolean(spec.apply(name, [a, b]), "any-of-any")
               for a in bag_a for b in bag_b)


_register("any-of", -1, _any_of, higher_order=True)
_register("all-of", -1, _all_of, higher_order=True)
_register("any-of-any", -1, _any_of_any, higher_order=True)
