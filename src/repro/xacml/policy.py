"""Policy elements: targets, rules, policies, policy sets.

Structure follows XACML 3.0:

- a :class:`Target` is a disjunction (:class:`AnyOf`) of conjunctions
  (:class:`AllOf`) of :class:`Match` elements; an empty target matches
  everything;
- a :class:`Rule` has an effect, an optional target and condition;
- a :class:`Policy` combines rules with a rule-combining algorithm;
- a :class:`PolicySet` combines policies/policy sets with a
  policy-combining algorithm;
- obligations attach to policies/policy sets and flow to the PEP with the
  matching decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Union

from repro.common.errors import PolicyError
from repro.xacml.attributes import DataType
from repro.xacml.context import Decision, Obligation, RequestContext
from repro.xacml.expressions import (
    AttributeDesignator,
    EvaluationError,
    Expression,
    FUNCTIONS,
)


class Effect(Enum):
    """Rule effects."""

    PERMIT = "Permit"
    DENY = "Deny"

    def to_decision(self) -> Decision:
        return Decision.PERMIT if self is Effect.PERMIT else Decision.DENY

    def to_indeterminate(self) -> Decision:
        return (Decision.INDETERMINATE_P if self is Effect.PERMIT
                else Decision.INDETERMINATE_D)


class MatchResult(Enum):
    """Outcome of target evaluation."""

    MATCH = "Match"
    NO_MATCH = "NoMatch"
    INDETERMINATE = "Indeterminate"


@dataclass(frozen=True)
class Match:
    """One match element: ``function(literal_value, candidate)`` over a bag.

    The match holds if the function is true for *any* value in the
    designated attribute's bag (per the XACML Match semantics).
    """

    function: str
    value: object
    designator: AttributeDesignator

    def __post_init__(self) -> None:
        if self.function not in FUNCTIONS:
            raise PolicyError(f"unknown match function: {self.function!r}")
        if FUNCTIONS[self.function].higher_order:
            raise PolicyError(f"match function must be first-order: {self.function!r}")

    def evaluate(self, request: RequestContext) -> MatchResult:
        spec = FUNCTIONS[self.function]
        try:
            bag = self.designator.evaluate(request)
            for candidate in bag:
                outcome = spec.apply(self.function, [self.value, candidate])
                if not isinstance(outcome, bool):
                    raise EvaluationError(
                        f"match function {self.function!r} returned non-boolean")
                if outcome:
                    return MatchResult.MATCH
            return MatchResult.NO_MATCH
        except PolicyError:
            return MatchResult.INDETERMINATE


@dataclass(frozen=True)
class AllOf:
    """Conjunction of matches."""

    matches: tuple[Match, ...]

    def evaluate(self, request: RequestContext) -> MatchResult:
        saw_indeterminate = False
        for match in self.matches:
            result = match.evaluate(request)
            if result is MatchResult.NO_MATCH:
                return MatchResult.NO_MATCH
            if result is MatchResult.INDETERMINATE:
                saw_indeterminate = True
        return MatchResult.INDETERMINATE if saw_indeterminate else MatchResult.MATCH


@dataclass(frozen=True)
class AnyOf:
    """Disjunction of :class:`AllOf` conjunctions."""

    all_ofs: tuple[AllOf, ...]

    def evaluate(self, request: RequestContext) -> MatchResult:
        saw_indeterminate = False
        for all_of in self.all_ofs:
            result = all_of.evaluate(request)
            if result is MatchResult.MATCH:
                return MatchResult.MATCH
            if result is MatchResult.INDETERMINATE:
                saw_indeterminate = True
        return MatchResult.INDETERMINATE if saw_indeterminate else MatchResult.NO_MATCH


@dataclass(frozen=True)
class Target:
    """Conjunction of :class:`AnyOf` elements; empty target matches all."""

    any_ofs: tuple[AnyOf, ...] = ()

    @classmethod
    def match_all(cls) -> "Target":
        return cls(any_ofs=())

    @classmethod
    def single(cls, function: str, value: object, category: str,
               attribute_id: str, data_type: str = DataType.STRING) -> "Target":
        """Convenience: target with one match element."""
        designator = AttributeDesignator(category, attribute_id, data_type)
        match = Match(function=function, value=value, designator=designator)
        return cls(any_ofs=(AnyOf(all_ofs=(AllOf(matches=(match,)),)),))

    def evaluate(self, request: RequestContext) -> MatchResult:
        saw_indeterminate = False
        for any_of in self.any_ofs:
            result = any_of.evaluate(request)
            if result is MatchResult.NO_MATCH:
                return MatchResult.NO_MATCH
            if result is MatchResult.INDETERMINATE:
                saw_indeterminate = True
        return MatchResult.INDETERMINATE if saw_indeterminate else MatchResult.MATCH


@dataclass
class Rule:
    """An effect guarded by a target and an optional boolean condition."""

    rule_id: str
    effect: Effect
    target: Target = field(default_factory=Target.match_all)
    condition: Optional[Expression] = None
    description: str = ""

    def evaluate(self, request: RequestContext) -> Decision:
        target_result = self.target.evaluate(request)
        if target_result is MatchResult.NO_MATCH:
            return Decision.NOT_APPLICABLE
        if target_result is MatchResult.INDETERMINATE:
            return self.effect.to_indeterminate()
        if self.condition is None:
            return self.effect.to_decision()
        try:
            outcome = self.condition.evaluate(request)
        except PolicyError:
            # Any evaluation failure (type error, empty one-and-only,
            # missing mandatory attribute) is Indeterminate per XACML.
            return self.effect.to_indeterminate()
        if not isinstance(outcome, bool):
            return self.effect.to_indeterminate()
        if outcome:
            return self.effect.to_decision()
        return Decision.NOT_APPLICABLE


@dataclass
class Policy:
    """Rules combined under a rule-combining algorithm."""

    policy_id: str
    rule_combining: str
    rules: list[Rule] = field(default_factory=list)
    target: Target = field(default_factory=Target.match_all)
    obligations: list[Obligation] = field(default_factory=list)
    description: str = ""

    def __post_init__(self) -> None:
        from repro.xacml.combining import RULE_COMBINING

        if self.rule_combining not in RULE_COMBINING:
            raise PolicyError(f"unknown rule combining algorithm: {self.rule_combining!r}")
        if not self.rules:
            raise PolicyError(f"policy {self.policy_id!r} has no rules")

    def evaluate(self, request: RequestContext) -> Decision:
        from repro.xacml.combining import RULE_COMBINING, adjust_for_target

        target_result = self.target.evaluate(request)
        if target_result is MatchResult.NO_MATCH:
            return Decision.NOT_APPLICABLE
        combined = RULE_COMBINING[self.rule_combining](
            [rule.evaluate(request) for rule in self.rules])
        if target_result is MatchResult.INDETERMINATE:
            return adjust_for_target(combined)
        return combined

    def evaluate_full(self, request: RequestContext) -> tuple[Decision, list[Obligation]]:
        """Decision plus the obligations owed for it."""
        decision = self.evaluate(request)
        return decision, self.obligations_for(decision)

    def obligations_for(self, decision: Decision) -> list[Obligation]:
        effective = decision.collapse()
        return [ob for ob in self.obligations if ob.fulfill_on == effective.value]


PolicyElement = Union[Policy, "PolicySet"]


@dataclass
class PolicySet:
    """Policies (and nested policy sets) under a policy-combining algorithm."""

    policy_set_id: str
    policy_combining: str
    children: list[PolicyElement] = field(default_factory=list)
    target: Target = field(default_factory=Target.match_all)
    obligations: list[Obligation] = field(default_factory=list)
    description: str = ""

    def __post_init__(self) -> None:
        from repro.xacml.combining import POLICY_COMBINING

        if self.policy_combining not in POLICY_COMBINING:
            raise PolicyError(
                f"unknown policy combining algorithm: {self.policy_combining!r}")
        if not self.children:
            raise PolicyError(f"policy set {self.policy_set_id!r} has no children")

    def evaluate(self, request: RequestContext) -> Decision:
        return self.evaluate_full(request)[0]

    def evaluate_full(self, request: RequestContext) -> tuple[Decision, list[Obligation]]:
        """Decision plus obligations from every child that agreed with it.

        Per XACML, obligations propagate upward from the policies whose own
        decision matches the combined decision, plus this set's own
        obligations for that decision.
        """
        from repro.xacml.combining import POLICY_COMBINING, adjust_for_target

        target_result = self.target.evaluate(request)
        if target_result is MatchResult.NO_MATCH:
            return Decision.NOT_APPLICABLE, []
        child_results = [child.evaluate_full(request) for child in self.children]
        combined = POLICY_COMBINING[self.policy_combining](
            [decision for decision, _ in child_results])
        if target_result is MatchResult.INDETERMINATE:
            combined = adjust_for_target(combined)
        obligations = [ob for ob in self.obligations
                       if ob.fulfill_on == combined.collapse().value]
        for decision, child_obligations in child_results:
            if decision.collapse() == combined.collapse():
                obligations.extend(child_obligations)
        return combined, obligations

    def iter_policies(self) -> list[Policy]:
        """All leaf policies in document order."""
        leaves: list[Policy] = []
        for child in self.children:
            if isinstance(child, Policy):
                leaves.append(child)
            else:
                leaves.extend(child.iter_policies())
        return leaves
