"""The Policy Decision Point.

Wraps a root policy element and turns requests into
:class:`~repro.xacml.context.ResponseContext` objects: decision, XACML
status and the obligations the PEP must discharge.  This is the component
DRAMS monitors (a compromised PDP is one of the paper's threat cases), so
the evaluation path is deliberately side-effect free — tampering is modelled
in :mod:`repro.threats`, never here.
"""

from __future__ import annotations

from typing import Union

from repro.common.errors import PolicyError
from repro.xacml.context import Decision, RequestContext, ResponseContext, StatusCode
from repro.xacml.index import compile_target_index
from repro.xacml.policy import Policy, PolicySet


class PolicyDecisionPoint:
    """Evaluates requests against a policy or policy set.

    With ``indexed=True`` the PDP compiles a target index
    (:mod:`repro.xacml.index`) once and evaluates through it, skipping
    rules and policy-set branches whose targets provably cannot match.
    Decisions and obligations are bit-identical either way.
    """

    def __init__(self, root: Union[Policy, PolicySet], indexed: bool = False) -> None:
        if not isinstance(root, (Policy, PolicySet)):
            raise PolicyError(f"PDP root must be Policy or PolicySet, got {type(root)}")
        self.root = root
        self.index = compile_target_index(root) if indexed else None
        self.evaluations = 0

    @property
    def root_id(self) -> str:
        if isinstance(self.root, Policy):
            return self.root.policy_id
        return self.root.policy_set_id

    def evaluate(self, request: RequestContext) -> ResponseContext:
        """Produce the response context for one request."""
        self.evaluations += 1
        evaluator = self.index if self.index is not None else self.root
        try:
            decision, obligations = evaluator.evaluate_full(request)
        except PolicyError as exc:
            return ResponseContext(
                decision=Decision.INDETERMINATE,
                status_code=StatusCode.PROCESSING_ERROR,
                status_message=str(exc),
            )
        status_code = StatusCode.OK
        message = ""
        if decision.is_indeterminate():
            status_code = StatusCode.PROCESSING_ERROR
            message = "evaluation raised an indeterminate result"
        return ResponseContext(
            decision=decision.collapse(),
            status_code=status_code,
            status_message=message,
            obligations=obligations,
        )
