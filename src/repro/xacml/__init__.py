"""XACML-style access control engine.

The FaaS access control system the paper monitors is XACML-based: PEPs
intercept requests, the central PDP evaluates policies, decisions flow back
for enforcement.  This package implements the XACML 3.0 core subset those
scenarios need, from scratch:

- attribute model with the four standard categories (:mod:`attributes`),
- request/response contexts and the four-valued (plus extended
  indeterminate) decision algebra (:mod:`context`),
- a typed expression language with the standard function library and
  higher-order bag functions (:mod:`expressions`),
- targets, rules, policies and policy sets (:mod:`policy`),
- the six standard combining algorithms with XACML 3.0 extended
  indeterminate handling (:mod:`combining`),
- a target index pre-compiling rule targets into attribute guards so
  evaluation skips provably non-matching branches (:mod:`index`),
- a PDP evaluator producing decisions plus obligations (:mod:`pdp`),
- JSON (de)serialization for policies and requests (:mod:`parser`).
"""

from repro.xacml.attributes import Category, AttributeId, Bag
from repro.xacml.context import (
    Decision,
    RequestContext,
    ResponseContext,
    Obligation,
    StatusCode,
)
from repro.xacml.expressions import (
    Expression,
    Literal,
    AttributeDesignator,
    Apply,
    EvaluationError,
    FUNCTIONS,
)
from repro.xacml.policy import Match, AllOf, AnyOf, Target, Rule, Policy, PolicySet, Effect
from repro.xacml.combining import RULE_COMBINING, POLICY_COMBINING
from repro.xacml.index import (
    IndexStats,
    IndexedPolicy,
    IndexedPolicySet,
    attribute_footprint,
    compile_target_index,
)
from repro.xacml.pdp import PolicyDecisionPoint
from repro.xacml.parser import policy_to_dict, policy_from_dict, request_to_dict, request_from_dict

__all__ = [
    "Category",
    "AttributeId",
    "Bag",
    "Decision",
    "RequestContext",
    "ResponseContext",
    "Obligation",
    "StatusCode",
    "Expression",
    "Literal",
    "AttributeDesignator",
    "Apply",
    "EvaluationError",
    "FUNCTIONS",
    "Match",
    "AllOf",
    "AnyOf",
    "Target",
    "Rule",
    "Policy",
    "PolicySet",
    "Effect",
    "RULE_COMBINING",
    "POLICY_COMBINING",
    "IndexStats",
    "IndexedPolicy",
    "IndexedPolicySet",
    "attribute_footprint",
    "compile_target_index",
    "PolicyDecisionPoint",
    "policy_to_dict",
    "policy_from_dict",
    "request_to_dict",
    "request_from_dict",
]
