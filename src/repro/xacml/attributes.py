"""Attribute model: categories, identifiers, typed bags.

XACML evaluates policies over *attributes* grouped into categories
(access-subject, resource, action, environment).  Attribute lookups return
*bags* — unordered multisets — because a request may carry several values
for one attribute (e.g. a subject with two roles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.common.errors import PolicyError


class Category:
    """The four standard XACML 3.0 attribute categories."""

    SUBJECT = "urn:oasis:names:tc:xacml:1.0:subject-category:access-subject"
    RESOURCE = "urn:oasis:names:tc:xacml:3.0:attribute-category:resource"
    ACTION = "urn:oasis:names:tc:xacml:3.0:attribute-category:action"
    ENVIRONMENT = "urn:oasis:names:tc:xacml:3.0:attribute-category:environment"

    ALL = (SUBJECT, RESOURCE, ACTION, ENVIRONMENT)

    _SHORT = {
        "subject": SUBJECT,
        "resource": RESOURCE,
        "action": ACTION,
        "environment": ENVIRONMENT,
    }

    @classmethod
    def expand(cls, name: str) -> str:
        """Accept either a short name ("subject") or a full URN."""
        if name in cls._SHORT:
            return cls._SHORT[name]
        if name in cls.ALL:
            return name
        raise PolicyError(f"unknown attribute category: {name!r}")

    @classmethod
    def shorten(cls, urn: str) -> str:
        for short, full in cls._SHORT.items():
            if full == urn:
                return short
        return urn


@dataclass(frozen=True)
class AttributeId:
    """A category-qualified attribute identifier."""

    category: str
    attribute_id: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "category", Category.expand(self.category))

    def short(self) -> str:
        return f"{Category.shorten(self.category)}:{self.attribute_id}"


class DataType:
    """Supported attribute data types (a practical XACML subset)."""

    STRING = "string"
    INTEGER = "integer"
    DOUBLE = "double"
    BOOLEAN = "boolean"
    TIME = "time"  # seconds since midnight, as a double

    ALL = (STRING, INTEGER, DOUBLE, BOOLEAN, TIME)

    _PYTHON_TYPES = {
        STRING: str,
        INTEGER: int,
        DOUBLE: float,
        BOOLEAN: bool,
        TIME: float,
    }

    @classmethod
    def check(cls, data_type: str, value: Any) -> Any:
        """Validate/coerce ``value`` for ``data_type``; raise on mismatch."""
        if data_type not in cls._PYTHON_TYPES:
            raise PolicyError(f"unknown data type: {data_type!r}")
        expected = cls._PYTHON_TYPES[data_type]
        if expected is float and isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        if expected is int and isinstance(value, bool):
            raise PolicyError(f"boolean is not an integer: {value!r}")
        if not isinstance(value, expected):
            raise PolicyError(
                f"value {value!r} is not of data type {data_type}")
        return value

    @classmethod
    def infer(cls, value: Any) -> str:
        if isinstance(value, bool):
            return cls.BOOLEAN
        if isinstance(value, int):
            return cls.INTEGER
        if isinstance(value, float):
            return cls.DOUBLE
        if isinstance(value, str):
            return cls.STRING
        raise PolicyError(f"cannot infer data type of {value!r}")


class Bag:
    """An unordered multiset of same-typed attribute values."""

    def __init__(self, data_type: str, values: Iterable[Any] = ()) -> None:
        self.data_type = data_type
        self.values = [DataType.check(data_type, v) for v in values]

    @classmethod
    def of(cls, *values: Any) -> "Bag":
        """Build a bag inferring the data type from the first value."""
        if not values:
            raise PolicyError("Bag.of needs at least one value; use empty() instead")
        data_type = DataType.infer(values[0])
        return cls(data_type, values)

    @classmethod
    def empty(cls, data_type: str = DataType.STRING) -> "Bag":
        return cls(data_type)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __contains__(self, value: Any) -> bool:
        return value in self.values

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bag):
            return NotImplemented
        return (self.data_type == other.data_type
                and sorted(map(repr, self.values)) == sorted(map(repr, other.values)))

    def __repr__(self) -> str:
        return f"Bag({self.data_type}, {self.values!r})"

    def one_and_only(self) -> Any:
        """The single element of a singleton bag (XACML one-and-only)."""
        if len(self.values) != 1:
            raise PolicyError(
                f"one-and-only applied to a bag of size {len(self.values)}")
        return self.values[0]
