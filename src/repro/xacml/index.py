"""Target indexing: pre-compiled attribute guards for fast rule dispatch.

Plain evaluation walks the whole policy tree for every request, running the
full Match machinery (designator lookup, function dispatch) even for rules
whose targets obviously cannot match.  This module compiles each rule and
policy-set-child target into a *guard* — the set of equality constraints a
request must satisfy for the target to possibly match — so evaluation can
skip provably non-matching branches with a handful of set lookups.

Soundness: a guard only ever proves ``NoMatch``.  A rule is skipped iff its
target is *guaranteed* to evaluate to ``NoMatch``, in which case the rule
would have contributed exactly ``NotApplicable`` (and a policy-set child
exactly ``(NotApplicable, [])``).  The indeterminate paths are preserved:

- an empty bag makes every match on that attribute ``NoMatch`` → skippable;
- a non-empty bag of the wrong data type makes the match ``Indeterminate``
  → never skipped;
- only pure equality match functions over validated literals are inverted
  into guards; everything else falls back to full evaluation.

Differential tests (`tests/test_target_index.py`) assert decisions *and*
obligations are bit-identical to the slow path on random policy trees and
on every shipped scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.xacml.attributes import DataType
from repro.xacml.combining import POLICY_COMBINING, RULE_COMBINING, adjust_for_target
from repro.xacml.context import Decision, Obligation, RequestContext
from repro.xacml.expressions import Apply, AttributeDesignator, Expression
from repro.xacml.policy import MatchResult, Policy, PolicySet, Target

#: Match functions that are pure typed equality — the only ones a guard can
#: safely invert into a value-membership test.
_EQUALITY_FUNCTIONS = {
    "string-equal": DataType.STRING,
    "integer-equal": DataType.INTEGER,
    "double-equal": DataType.DOUBLE,
    "boolean-equal": DataType.BOOLEAN,
    "time-equal": DataType.TIME,
}

_INVALID = object()


def _guard_literal(value: object, data_type: str) -> object:
    """The literal as it would compare against bag values, or ``_INVALID``.

    A literal the equality function would reject raises at evaluation time
    (→ Indeterminate), so such matches must never be inverted into guards.
    """
    if data_type == DataType.STRING:
        return value if isinstance(value, str) else _INVALID
    if data_type == DataType.BOOLEAN:
        return value if isinstance(value, bool) else _INVALID
    if data_type == DataType.INTEGER:
        if isinstance(value, int) and not isinstance(value, bool):
            return value
        return _INVALID
    if data_type in (DataType.DOUBLE, DataType.TIME):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
        return _INVALID
    return _INVALID


@dataclass(frozen=True)
class _MatchKey:
    """One invertible equality constraint from a target match."""

    category: str
    attribute_id: str
    data_type: str
    value: object


class _BagView:
    """Per-request memo of bag lookups shared across the whole tree."""

    __slots__ = ("request", "_memo")

    def __init__(self, request: RequestContext) -> None:
        self.request = request
        self._memo: dict[tuple[str, str, str], Optional[frozenset]] = {}

    def excludes(self, key: _MatchKey) -> bool:
        """True iff the match for ``key`` is guaranteed ``NoMatch``."""
        attr = (key.category, key.attribute_id, key.data_type)
        values = self._memo.get(attr, _INVALID)
        if values is _INVALID:
            bag = self.request.bag(key.category, key.attribute_id, key.data_type)
            if len(bag) == 0:
                values = frozenset()
            elif bag.data_type != key.data_type:
                values = None  # type clash → Indeterminate, never skippable
            else:
                values = frozenset(bag.values)
            self._memo[attr] = values
        if values is None:
            return False
        return key.value not in values


def compile_guard(target: Target) -> Optional[tuple[_MatchKey, ...]]:
    """One key per AllOf of some AnyOf; all-excluded ⇒ target is NoMatch.

    ``Target.evaluate`` returns ``NoMatch`` as soon as any AnyOf is
    ``NoMatch``; an AnyOf is ``NoMatch`` when every one of its AllOf
    conjunctions contains a match that is ``NoMatch``.  The guard therefore
    picks, for a single AnyOf, one invertible match per AllOf.  Returns
    ``None`` when no AnyOf is fully invertible (the rule is then always
    evaluated).  An empty target has no guard — it matches everything.
    """
    best: Optional[tuple[_MatchKey, ...]] = None
    for any_of in target.any_ofs:
        keys: list[_MatchKey] = []
        invertible = True
        for all_of in any_of.all_ofs:
            key = None
            for match in all_of.matches:
                data_type = _EQUALITY_FUNCTIONS.get(match.function)
                if data_type is None:
                    continue
                designator = match.designator
                if designator.must_be_present or designator.data_type != data_type:
                    continue
                literal = _guard_literal(match.value, data_type)
                if literal is _INVALID:
                    continue
                key = _MatchKey(designator.category, designator.attribute_id, data_type, literal)
                break
            if key is None:
                invertible = False
                break
            keys.append(key)
        if invertible and keys and (best is None or len(keys) < len(best)):
            best = tuple(keys)
    return best


@dataclass
class IndexStats:
    """Skip/evaluate counters for one compiled index."""

    rules_skipped: int = 0
    rules_evaluated: int = 0
    children_skipped: int = 0
    children_evaluated: int = 0

    def as_dict(self) -> dict:
        return {
            "rules_skipped": self.rules_skipped,
            "rules_evaluated": self.rules_evaluated,
            "children_skipped": self.children_skipped,
            "children_evaluated": self.children_evaluated,
        }


class IndexedPolicy:
    """A :class:`Policy` with per-rule target guards."""

    def __init__(self, policy: Policy, stats: IndexStats) -> None:
        self.policy = policy
        self.stats = stats
        self.guard = compile_guard(policy.target)
        self._combine = RULE_COMBINING[policy.rule_combining]
        self._guards = [compile_guard(rule.target) for rule in policy.rules]
        # What the slow path returns for a NoMatch target — obligations with
        # a non-standard fulfill_on of "NotApplicable" included, so skipping
        # this policy as a child stays bit-identical.
        self.skip_result = (
            Decision.NOT_APPLICABLE,
            policy.obligations_for(Decision.NOT_APPLICABLE),
        )

    @property
    def guarded_rules(self) -> int:
        return sum(1 for guard in self._guards if guard is not None)

    def evaluate_full(
        self,
        request: RequestContext,
        view: Optional[_BagView] = None,
    ) -> tuple[Decision, list[Obligation]]:
        view = view if view is not None else _BagView(request)
        decision = self._evaluate(request, view)
        return decision, self.policy.obligations_for(decision)

    def _evaluate(self, request: RequestContext, view: _BagView) -> Decision:
        policy = self.policy
        target_result = policy.target.evaluate(request)
        if target_result is MatchResult.NO_MATCH:
            return Decision.NOT_APPLICABLE
        decisions: list[Decision] = []
        for rule, guard in zip(policy.rules, self._guards):
            if guard is not None and all(view.excludes(key) for key in guard):
                self.stats.rules_skipped += 1
                decisions.append(Decision.NOT_APPLICABLE)
            else:
                self.stats.rules_evaluated += 1
                decisions.append(rule.evaluate(request))
        combined = self._combine(decisions)
        if target_result is MatchResult.INDETERMINATE:
            return adjust_for_target(combined)
        return combined


class IndexedPolicySet:
    """A :class:`PolicySet` with per-child target guards, nested."""

    def __init__(self, policy_set: PolicySet, stats: IndexStats) -> None:
        self.policy_set = policy_set
        self.stats = stats
        self.guard = compile_guard(policy_set.target)
        self._combine = POLICY_COMBINING[policy_set.policy_combining]
        self.children = [_compile_element(child, stats) for child in policy_set.children]
        # PolicySet.evaluate_full returns ([], no obligations) on NoMatch.
        self.skip_result: tuple[Decision, list[Obligation]] = (Decision.NOT_APPLICABLE, [])

    def evaluate_full(
        self,
        request: RequestContext,
        view: Optional[_BagView] = None,
    ) -> tuple[Decision, list[Obligation]]:
        view = view if view is not None else _BagView(request)
        policy_set = self.policy_set
        target_result = policy_set.target.evaluate(request)
        if target_result is MatchResult.NO_MATCH:
            return Decision.NOT_APPLICABLE, []
        child_results: list[tuple[Decision, list[Obligation]]] = []
        for child in self.children:
            if child.guard is not None and all(view.excludes(key) for key in child.guard):
                self.stats.children_skipped += 1
                child_results.append(child.skip_result)
            else:
                self.stats.children_evaluated += 1
                child_results.append(child.evaluate_full(request, view))
        combined = self._combine([decision for decision, _ in child_results])
        if target_result is MatchResult.INDETERMINATE:
            combined = adjust_for_target(combined)
        obligations = [
            ob for ob in policy_set.obligations if ob.fulfill_on == combined.collapse().value
        ]
        for decision, child_obligations in child_results:
            if decision.collapse() == combined.collapse():
                obligations.extend(child_obligations)
        return combined, obligations


IndexedElement = Union[IndexedPolicy, IndexedPolicySet]


def _compile_element(element: Union[Policy, PolicySet], stats: IndexStats) -> IndexedElement:
    if isinstance(element, Policy):
        return IndexedPolicy(element, stats)
    return IndexedPolicySet(element, stats)


def compile_target_index(root: Union[Policy, PolicySet]) -> IndexedElement:
    """Compile the attribute-keyed target index for a policy tree."""
    return _compile_element(root, IndexStats())


# -- attribute footprint ------------------------------------------------------


def _expression_footprint(expr: Expression, out: set) -> None:
    if isinstance(expr, AttributeDesignator):
        out.add((expr.category, expr.attribute_id))
    elif isinstance(expr, Apply):
        for argument in expr.arguments:
            _expression_footprint(argument, out)


def _target_footprint(target: Target, out: set) -> None:
    for any_of in target.any_ofs:
        for all_of in any_of.all_ofs:
            for match in all_of.matches:
                out.add((match.designator.category, match.designator.attribute_id))


def attribute_footprint(root: Union[Policy, PolicySet]) -> frozenset[tuple[str, str]]:
    """Every ``(short category, attribute id)`` the tree can ever read.

    A decision is a function of only these attributes — all bag lookups go
    through statically-known designators — so projecting a request onto the
    footprint preserves the decision.  The decision cache keys on this
    projection, making requests that differ only in irrelevant attributes
    (timestamps, padding) share one cache entry.
    """
    from repro.xacml.attributes import Category

    out: set[tuple[str, str]] = set()
    stack: list[Union[Policy, PolicySet]] = [root]
    while stack:
        element = stack.pop()
        _target_footprint(element.target, out)
        if isinstance(element, Policy):
            for rule in element.rules:
                _target_footprint(rule.target, out)
                if rule.condition is not None:
                    _expression_footprint(rule.condition, out)
        else:
            stack.extend(element.children)
    return frozenset((Category.shorten(category), attribute_id) for category, attribute_id in out)
