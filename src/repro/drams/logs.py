"""Access log schema.

Every access request produces (at most) four log entries, one per
monitoring point.  An entry carries:

- the *correlation id* joining all entries of one request instance,
- a *hash commitment* over the semantic payload — what the smart contract
  compares across monitoring points without needing the plaintext,
- the payload itself, encrypted under the federation key K before it
  leaves the Logging Interface (on-chain data is public to the federation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.errors import ValidationError
from repro.crypto.hashing import hash_value


class EntryType:
    """The four monitoring points of the PEP→PDP→PEP flow."""

    PEP_IN = "pep-in"
    PDP_IN = "pdp-in"
    PDP_OUT = "pdp-out"
    PEP_OUT = "pep-out"

    ALL = (PEP_IN, PDP_IN, PDP_OUT, PEP_OUT)

    #: Pairs whose payload hashes must agree for an untampered flow, and
    #: the mismatch alert each pair raises (see the monitor contract).
    REQUEST_LEG = (PEP_IN, PDP_IN)
    DECISION_LEG = (PDP_OUT, PEP_OUT)


@dataclass
class LogEntry:
    """One probe observation, before encryption."""

    correlation_id: str
    entry_type: str
    tenant: str
    component: str
    payload: dict[str, Any]
    observed_at: float

    def __post_init__(self) -> None:
        if self.entry_type not in EntryType.ALL:
            raise ValidationError(f"unknown log entry type: {self.entry_type!r}")

    def payload_hash(self) -> str:
        """Hash commitment the contract uses for cross-probe matching."""
        return hash_value(self.payload)

    def to_dict(self) -> dict:
        return {
            "correlation_id": self.correlation_id,
            "entry_type": self.entry_type,
            "tenant": self.tenant,
            "component": self.component,
            "payload": self.payload,
            "observed_at": self.observed_at,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LogEntry":
        try:
            return cls(
                correlation_id=data["correlation_id"],
                entry_type=data["entry_type"],
                tenant=data["tenant"],
                component=data["component"],
                payload=dict(data["payload"]),
                observed_at=float(data["observed_at"]),
            )
        except (KeyError, TypeError) as exc:
            raise ValidationError(f"malformed log entry: {exc}") from exc
