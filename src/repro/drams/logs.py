"""Access log schema.

Every access request produces (at most) four log entries, one per
monitoring point.  An entry carries:

- the *correlation id* joining all entries of one request instance,
- a *hash commitment* over the semantic payload — what the smart contract
  compares across monitoring points without needing the plaintext,
- the payload itself, encrypted under the federation key K before it
  leaves the Logging Interface (on-chain data is public to the federation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.errors import ValidationError
from repro.common.fastpath import FLAGS
from repro.common.serialization import canonical_bytes
from repro.crypto.hashing import sha256_hex


class EntryType:
    """The four monitoring points of the PEP→PDP→PEP flow."""

    PEP_IN = "pep-in"
    PDP_IN = "pdp-in"
    PDP_OUT = "pdp-out"
    PEP_OUT = "pep-out"

    ALL = (PEP_IN, PDP_IN, PDP_OUT, PEP_OUT)

    #: Pairs whose payload hashes must agree for an untampered flow, and
    #: the mismatch alert each pair raises (see the monitor contract).
    REQUEST_LEG = (PEP_IN, PDP_IN)
    DECISION_LEG = (PDP_OUT, PEP_OUT)


@dataclass
class LogEntry:
    """One probe observation, before encryption."""

    correlation_id: str
    entry_type: str
    tenant: str
    component: str
    payload: dict[str, Any]
    observed_at: float

    def __post_init__(self) -> None:
        if self.entry_type not in EntryType.ALL:
            raise ValidationError(f"unknown log entry type: {self.entry_type!r}")

    def canonical_payload(self) -> bytes:
        """Canonical payload encoding, frozen on first use (fast path).

        The Logging Interface needs these bytes twice per entry — once for
        encryption under the federation key, once for the hash commitment —
        so the encoding is cached; the payload must not be mutated after
        the first call.
        """
        if not FLAGS.encoding_cache:
            return canonical_bytes(self.payload)
        cached = getattr(self, "_payload_bytes_cache", None)
        if cached is None:
            cached = canonical_bytes(self.payload)
            self._payload_bytes_cache = cached
        return cached

    def payload_hash(self) -> str:
        """Hash commitment the contract uses for cross-probe matching."""
        return sha256_hex(self.canonical_payload())

    def to_dict(self) -> dict:
        return {
            "correlation_id": self.correlation_id,
            "entry_type": self.entry_type,
            "tenant": self.tenant,
            "component": self.component,
            "payload": self.payload,
            "observed_at": self.observed_at,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LogEntry":
        try:
            return cls(
                correlation_id=data["correlation_id"],
                entry_type=data["entry_type"],
                tenant=data["tenant"],
                component=data["component"],
                payload=dict(data["payload"]),
                observed_at=float(data["observed_at"]),
            )
        except (KeyError, TypeError) as exc:
            raise ValidationError(f"malformed log entry: {exc}") from exc
