"""Security alerts raised by DRAMS.

Each alert type maps to a threat from the paper's motivation:

- ``REQUEST_MISMATCH`` — the request the PDP evaluated differs from the
  one the PEP intercepted (request tampered in flight or by the PEP),
- ``DECISION_MISMATCH`` — the decision the PEP enforced differs from the
  one the PDP issued (decision tampered in flight or by the PEP),
- ``MISSING_LOG`` — a monitoring point never reported within the timeout
  window (component circumvented, probe suppressed, log dropped),
- ``EQUIVOCATION`` — two different payloads logged for the same monitoring
  point of the same request (replay or double-reporting),
- ``INCORRECT_DECISION`` — the Analyser re-derived a different decision
  from the policies in force (policy or evaluation process altered),
- ``ATTESTATION_FAILURE`` — a TPM-protected off-chain component no longer
  matches its sealed measurement (component integrity lost),
- ``POLICY_CHURN`` — two honest-looking reports for one monitoring point
  declare *different* policy fingerprints: a policy publish raced the
  request across PRP replicas (informational; the Analyser judges whether
  the skew was within the staleness bound),
- ``POLICY_VIOLATION`` — a decision's declared policy provenance is bad:
  the fingerprint is unknown to the policy history (tampered PRP replica)
  or the declared version trails the policy in force by more than the
  staleness bound (stale-policy replay).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional


class AlertType(Enum):
    """Classification of DRAMS security alerts."""

    REQUEST_MISMATCH = "request-mismatch"
    DECISION_MISMATCH = "decision-mismatch"
    MISSING_LOG = "missing-log"
    EQUIVOCATION = "equivocation"
    INCORRECT_DECISION = "incorrect-decision"
    ATTESTATION_FAILURE = "attestation-failure"
    POLICY_CHURN = "policy-churn"
    POLICY_VIOLATION = "policy-violation"


@dataclass(frozen=True)
class Alert:
    """One security alert as delivered to a Logging Interface."""

    alert_type: AlertType
    correlation_id: str
    details: dict
    block_height: int
    raised_at: float

    def key(self) -> tuple[str, str]:
        """Deduplication key: one alert of a type per request instance."""
        return (self.alert_type.value, self.correlation_id)


class AlertBus:
    """Collects alerts across the federation, deduplicated.

    The same contract event reaches every Logging Interface (each tenant's
    node applies the same block); the bus keeps the earliest delivery and
    exposes query helpers the detection experiments use.
    """

    def __init__(self) -> None:
        self._alerts: dict[tuple[str, str], Alert] = {}
        self._listeners: list[Callable[[Alert], None]] = []
        self.duplicate_deliveries = 0

    def publish(self, alert: Alert) -> bool:
        """Record an alert; returns False if it was a duplicate delivery."""
        key = alert.key()
        if key in self._alerts:
            self.duplicate_deliveries += 1
            return False
        self._alerts[key] = alert
        for listener in self._listeners:
            listener(alert)
        return True

    def on_alert(self, listener: Callable[[Alert], None]) -> None:
        self._listeners.append(listener)

    # -- queries -----------------------------------------------------------

    def all(self) -> list[Alert]:
        return sorted(self._alerts.values(), key=lambda a: (a.raised_at, a.key()))

    def of_type(self, alert_type: AlertType) -> list[Alert]:
        return [a for a in self.all() if a.alert_type is alert_type]

    def for_correlation(self, correlation_id: str) -> list[Alert]:
        return [a for a in self.all() if a.correlation_id == correlation_id]

    def count(self, alert_type: Optional[AlertType] = None) -> int:
        if alert_type is None:
            return len(self._alerts)
        return len(self.of_type(alert_type))

    def has(self, alert_type: AlertType, correlation_id: str) -> bool:
        return (alert_type.value, correlation_id) in self._alerts

    def types_seen(self) -> set[AlertType]:
        return {a.alert_type for a in self._alerts.values()}
