"""Probing agents.

An agent is an in-process interceptor attached to a monitored component's
probe hooks.  It converts each observation into a :class:`LogEntry` and
ships it to the tenant's Logging Interface as a ``drams_log`` network
message (an intra-tenant hop — agents and LI share the tenant, as in
Figure 1).

The agent deliberately uses the *component's* network identity for that
hop: it is deployed inside the component's runtime, which is also why a
fully compromised component can at worst *suppress* its own probe (modelled
by ``ProbeAgent.suppressed``) — producing a MISSING_LOG detection — but
cannot forge other components' probes, whose log transactions are signed by
their own Logging Interfaces.
"""

from __future__ import annotations

from repro.accesscontrol.messages import AccessDecision, AccessRequest
from repro.accesscontrol.pdp_service import PdpService
from repro.accesscontrol.pep import PolicyEnforcementPoint
from repro.accesscontrol.plane import DecisionPlane
from repro.common.errors import ValidationError
from repro.drams.logs import EntryType, LogEntry
from repro.simnet.network import Host


class ProbeAgent:
    """One agent monitoring one component."""

    def __init__(self, component_host: Host, tenant: str, component_id: str,
                 li_address: str) -> None:
        self.component_host = component_host
        self.tenant = tenant
        self.component_id = component_id
        self.li_address = li_address
        self.suppressed = False
        self.suppressed_types: set[str] = set()
        self.observations = 0
        self.detached = False
        #: Undo closures the attach_* helpers register; ``detach()`` runs
        #: them to unhook this agent from the component's probe points.
        self._detachers: list = []

    def detach(self) -> None:
        """Unhook from the monitored component.

        The decision-plane membership protocol calls this on the
        ``"removed"`` event — after the drained shard has finished its
        last in-flight evaluation, so detaching never skips an
        observation — and on the ``"crashed"`` event, where the probe
        (an in-process interceptor) dies with the component it runs in.
        Idempotent; observation counters survive for post-run
        inspection.
        """
        if self.detached:
            return
        self.detached = True
        for undo in self._detachers:
            undo()
        self._detachers.clear()

    def observe(self, correlation_id: str, entry_type: str, payload: dict) -> None:
        """Record one monitoring point and ship it to the LI."""
        if self.suppressed or entry_type in self.suppressed_types:
            return
        self.observations += 1
        entry = LogEntry(
            correlation_id=correlation_id,
            entry_type=entry_type,
            tenant=self.tenant,
            component=self.component_id,
            # The probe reads the *component's* clock — a fault-plane
            # clock_skew event on the host shows up here, and only here:
            # observation timestamps skew, simulator ordering does not.
            payload=payload,
            observed_at=self.component_host.local_now,
        )
        self.component_host.send(self.li_address, "drams_log", entry.to_dict())


def attach_pep_probes(pep: PolicyEnforcementPoint, li_address: str) -> ProbeAgent:
    """Wire an agent to a PEP's two monitoring points."""
    agent = ProbeAgent(component_host=pep, tenant=pep.tenant_name,
                       component_id=pep.address, li_address=li_address)

    def on_request(request: AccessRequest) -> None:
        agent.observe(request.correlation(), EntryType.PEP_IN,
                      request.semantic_payload())

    def on_enforce(request: AccessRequest, decision: AccessDecision) -> None:
        agent.observe(request.correlation(), EntryType.PEP_OUT,
                      decision.semantic_payload())

    pep.on_request_intercepted.append(on_request)
    pep.on_enforce.append(on_enforce)
    agent._detachers.append(lambda: pep.on_request_intercepted.remove(on_request))
    agent._detachers.append(lambda: pep.on_enforce.remove(on_enforce))
    return agent


def attach_pdp_probes(pdp_service: PdpService, tenant: str, li_address: str) -> ProbeAgent:
    """Wire an agent to the PDP's two monitoring points."""
    agent = ProbeAgent(component_host=pdp_service, tenant=tenant,
                       component_id=pdp_service.address, li_address=li_address)

    def on_request(request: AccessRequest) -> None:
        agent.observe(request.correlation(), EntryType.PDP_IN,
                      request.semantic_payload())

    def on_decision(request: AccessRequest, decision: AccessDecision) -> None:
        agent.observe(request.correlation(), EntryType.PDP_OUT,
                      decision.semantic_payload())

    pdp_service.on_request_received.append(on_request)
    pdp_service.on_decision.append(on_decision)
    agent._detachers.append(
        lambda: pdp_service.on_request_received.remove(on_request))
    agent._detachers.append(lambda: pdp_service.on_decision.remove(on_decision))
    return agent


def attach_plane_probes(plane: DecisionPlane, tenant: str,
                        li_address: str) -> dict[str, ProbeAgent]:
    """Wire agents to *every* evaluator replica behind a decision plane.

    Monitoring coverage must follow the plane: a sharded pool with an
    unprobed replica would open a decision path DRAMS never observes.
    The primary replica keeps the historical ``"pdp"`` probe key (threat
    experiments target it); further shards get ``"pdp:<index>"``.  For
    planes with *elastic* membership, pair this with
    :func:`follow_plane_membership` so coverage tracks runtime changes.
    """
    services = plane.services
    if not services:
        raise ValidationError(
            "decision plane has no deployed evaluator services to probe "
            "(route-only planes cannot be monitored)")
    agents: dict[str, ProbeAgent] = {}
    for index, service in enumerate(services):
        key = "pdp" if index == 0 else f"pdp:{index}"
        agents[key] = attach_pdp_probes(service, tenant, li_address)
    return agents


def follow_plane_membership(plane: DecisionPlane, probes: dict[str, ProbeAgent],
                            tenant: str, li_address: str) -> None:
    """Keep ``probes`` in lockstep with a plane's membership events.

    The one membership-to-coverage protocol both DRAMS and the
    centralized baseline follow: a shard announced as ``"added"`` or
    ``"restarted"`` is probed before it can serve a request (guarding
    against double-probe if it is somehow already covered), keyed
    ``"pdp:<address>"``; a shard announced as ``"removed"`` — quiescent,
    off the network — or ``"crashed"`` — the probe is in-process and
    died with it — has its probe detached.  ``"draining"`` keeps its
    probe: in-flight work must stay observed to its last reply.

    The protocol is indifferent to *who* changes membership: harness
    scripts (``add_pdp_shard(at=...)``) and the self-driving
    :class:`~repro.accesscontrol.autoscale.AutoscaleController` emit the
    same events, so controller-initiated elasticity is covered without
    any extra wiring (E14's monitored arm pins zero alert leakage).
    """

    def on_membership(event: str, service) -> None:
        if event in ("added", "restarted"):
            if any(probe.component_host is service and not probe.detached
                   for probe in probes.values()):
                return
            probes[f"pdp:{service.address}"] = attach_pdp_probes(
                service, tenant, li_address)
        elif event in ("removed", "crashed"):
            for probe in probes.values():
                if probe.component_host is service:
                    probe.detach()

    plane.on_membership(on_membership)
