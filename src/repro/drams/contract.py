"""The DRAMS monitor smart contract.

Runs replicated on every federation blockchain node.  It stores, per
correlation id, the hash commitments (and ciphertexts, for later audit by
the Analyser) of the four monitoring points, and applies the paper's
"expressly devised algorithms" incrementally as entries arrive:

1. **Request-leg matching** — once both PEP-in and PDP-in commitments are
   present, they must be equal; otherwise the request was modified between
   interception and evaluation → ``REQUEST_MISMATCH``.
2. **Decision-leg matching** — once both PDP-out and PEP-out commitments
   are present, they must be equal; otherwise the decision was modified
   between issuance and enforcement → ``DECISION_MISMATCH``.
3. **Equivocation** — a second, different payload for an already-recorded
   monitoring point → ``EQUIVOCATION`` (replays, double reporting).
   Exception: when the two payloads *declare different policy versions*
   (decision entries are stamped with the policy they were evaluated
   under), two honest evaluators may have answered under skewed PRP
   replicas → ``POLICY_CHURN`` instead.  The stamps live in
   attacker-reachable payloads, so churn is a *claim*, never a verdict:
   the contract rejects honestly-impossible or unauditable stamp pairs
   (same declared version, or a side without its ciphertext, stays
   ``EQUIVOCATION``; equal fingerprints under different versions — an
   identical re-publish — remain churn),
   keeps the conflicting report (``churn_reports``, ciphertext included)
   in the record, and the Analyser — which holds the policy history —
   audits every churn-classified payload: its fingerprint must belong to
   a published version *and* its decision must be what that version
   entails, else the churn claim becomes an on-chain
   ``policy-violation``.  Downgrading a tamper to churn therefore
   requires behaving exactly like an honest replica under a real
   version — which is churn.  With ``store_ciphertexts=False`` the audit
   would be impossible, so the downgrade is disabled with it: conflicts
   stay ``EQUIVOCATION`` in that configuration.
4. **Timeout sweep** — ``tick`` flags records whose expected entries did
   not all arrive within ``timeout_blocks`` of the first one →
   ``MISSING_LOG`` (circumvented components, suppressed probes).

The Analyser contributes decision-correctness verdicts via
``report_violation`` so that even *semantic* violations end up on-chain and
non-repudiable.

Sweep cost: ``tick`` walks two indices instead of the full records map —
``pending`` (correlations not yet complete nor flagged) for the timeout
sweep and ``retained`` (completed correlations in completion order, so
heights are non-decreasing and the expired prefix pops off the front) for
retention pruning.  Steady-state ticks over a mostly-verified chain are
O(pending + pruned), not O(all correlations ever recorded) — the same
indexing move the Analyser's sweep made in PR 3.

Alerts are contract *events*: they replicate with the chain, reach every
Logging Interface, and cannot be suppressed by any single tenant.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.blockchain.contracts import Contract, ContractContext, ContractError
from repro.drams.logs import EntryType

CONTRACT_NAME = "drams-monitor"

#: Event names emitted by the contract.
EVENT_ALERT = "Alert"
EVENT_VERIFIED = "AccessVerified"
EVENT_LOG_RECORDED = "LogRecorded"
#: One per churn-classified conflicting claim — deliberately NOT deduped
#: (unlike the ``policy-churn`` alert), so the Analyser audits every
#: claim, including ones arriving after the first alert already fired.
EVENT_CHURN_REPORT = "PolicyChurnReported"


class MonitorContract(Contract):
    """Replicated log store plus matching algorithms."""

    name = CONTRACT_NAME
    # Every method validates its arguments and raises before touching
    # state, so the engine may run invocations in place (fast path).
    checked_invoke = True

    #: Conflicting decision reports kept per record for the Analyser's
    #: churn audit; a cap so a flooding reporter cannot bloat the
    #: replicated state (the first conflict already raised the alert).
    MAX_CHURN_REPORTS = 8

    def __init__(self, timeout_blocks: int = 6, retention_blocks: int = 50,
                 store_ciphertexts: bool = True,
                 expected_entries: tuple[str, ...] = EntryType.ALL,
                 enable_leg_matching: bool = True) -> None:
        """``expected_entries`` and ``enable_leg_matching`` exist for the
        ablation experiments (probe-placement and matching-location
        studies); production deployments keep the defaults."""
        if timeout_blocks < 1:
            raise ContractError("timeout_blocks must be >= 1")
        for entry_type in expected_entries:
            if entry_type not in EntryType.ALL:
                raise ContractError(f"unknown expected entry: {entry_type!r}")
        self.timeout_blocks = timeout_blocks
        self.retention_blocks = retention_blocks
        self.store_ciphertexts = store_ciphertexts
        self.expected_entries = tuple(expected_entries)
        self.enable_leg_matching = enable_leg_matching

    def initial_state(self) -> dict[str, Any]:
        return {
            "records": {},
            # Sweep indices (see module docstring): correlation id → True
            # for records the timeout sweep must still watch, correlation
            # id → completed height for records awaiting retention pruning.
            "pending": {},
            "retained": {},
            "stats": {"logs": 0, "alerts": 0, "verified": 0, "pruned": 0},
        }

    # -- dispatch -------------------------------------------------------------

    def invoke(self, state: dict[str, Any], method: str, args: dict[str, Any],
               ctx: ContractContext, emit: Callable[[str, dict], None]) -> Any:
        if method == "record_log":
            return self._record_log(state, args, ctx, emit)
        if method == "tick":
            return self._tick(state, ctx, emit)
        if method == "report_violation":
            return self._report_violation(state, args, ctx, emit)
        raise ContractError(f"unknown method: {method!r}")

    # -- record bookkeeping ---------------------------------------------------------

    @staticmethod
    def _ensure_record(state: dict, corr_id: str, ctx: ContractContext) -> dict:
        """Fetch-or-create the correlation record, indexing new ones."""
        record = state["records"].get(corr_id)
        if record is None:
            record = {
                "first_height": ctx.block_height,
                "entries": {},
                "alerted": {},
                "complete": False,
            }
            state["records"][corr_id] = record
            state["pending"][corr_id] = True
        return record

    # -- log recording and incremental matching ----------------------------------

    def _record_log(self, state: dict, args: dict, ctx: ContractContext,
                    emit: Callable[[str, dict], None]) -> dict:
        try:
            corr_id = args["correlation_id"]
            entry_type = args["entry_type"]
            payload_hash = args["payload_hash"]
            tenant = args["tenant"]
            component = args["component"]
        except KeyError as exc:
            raise ContractError(f"record_log missing argument: {exc}") from exc
        if entry_type not in EntryType.ALL:
            raise ContractError(f"unknown entry type: {entry_type!r}")

        record = self._ensure_record(state, corr_id, ctx)
        entries = record["entries"]
        existing = entries.get(entry_type)
        incoming_fp = args.get("policy_fingerprint", "")
        if existing is not None:
            if existing["payload_hash"] == payload_hash:
                return {"ok": True, "duplicate": True}
            report = {
                "entry_type": entry_type,
                "payload_hash": payload_hash,
                "component": component,
                "policy_fingerprint": incoming_fp,
                "policy_version": args.get("policy_version", 0),
                "height": ctx.block_height,
            }
            if "ciphertext" in args:
                report["ciphertext"] = args["ciphertext"]
            if self._churn_pair(existing, report):
                # Two declared policy versions, both auditable: possibly
                # honest replicas racing a publish.  The conflicting
                # report is kept (with its ciphertext) and announced per
                # claim, so every claim gets audited.
                reports = record.setdefault("churn_reports", [])
                if len(reports) >= self.MAX_CHURN_REPORTS:
                    # A flood of conflicting reports is no longer churn.
                    self._alert(state, record, emit, ctx, "equivocation",
                                corr_id, {
                                    "entry_type": entry_type,
                                    "reason": "churn-report-overflow",
                                    "reports": len(reports),
                                })
                    return {"ok": True, "equivocation": True}
                reports.append(report)
                emit(EVENT_CHURN_REPORT, {
                    "correlation_id": corr_id,
                    "entry_type": entry_type,
                })
                self._alert(state, record, emit, ctx, "policy-churn", corr_id, {
                    "entry_type": entry_type,
                    "first_fingerprint": existing.get("policy_fingerprint", ""),
                    "second_fingerprint": incoming_fp,
                    "first_version": existing.get("policy_version", 0),
                    "second_version": args.get("policy_version", 0),
                    "first_reporter": existing["component"],
                    "second_reporter": component,
                })
                return {"ok": True, "policy_churn": True}
            self._alert(state, record, emit, ctx, "equivocation", corr_id, {
                "entry_type": entry_type,
                "first_hash": existing["payload_hash"],
                "second_hash": payload_hash,
                "first_reporter": existing["component"],
                "second_reporter": component,
            })
            return {"ok": True, "equivocation": True}

        entry = {
            "payload_hash": payload_hash,
            "tenant": tenant,
            "component": component,
            "height": ctx.block_height,
            # The carrying transaction, so proof services can answer
            # "prove my (correlation, entry-type) is on-chain" without a
            # linear chain scan.
            "tx_id": ctx.tx_id,
        }
        if "observed_at" in args:
            entry["observed_at"] = args["observed_at"]
        if incoming_fp:
            entry["policy_fingerprint"] = incoming_fp
            entry["policy_version"] = args.get("policy_version", 0)
        if self.store_ciphertexts and "ciphertext" in args:
            entry["ciphertext"] = args["ciphertext"]
        entries[entry_type] = entry
        state["stats"]["logs"] += 1
        emit(EVENT_LOG_RECORDED, {
            "correlation_id": corr_id,
            "entry_type": entry_type,
            "tenant": tenant,
        })

        if self.enable_leg_matching:
            self._match_leg(state, record, emit, ctx, corr_id,
                            EntryType.REQUEST_LEG, "request-mismatch")
            self._match_leg(state, record, emit, ctx, corr_id,
                            EntryType.DECISION_LEG, "decision-mismatch")
        self._maybe_complete(state, record, emit, ctx, corr_id)
        return {"ok": True}

    def _match_leg(self, state: dict, record: dict, emit, ctx: ContractContext,
                   corr_id: str, leg: tuple[str, str], alert_type: str) -> None:
        first, second = leg
        entries = record["entries"]
        if first not in entries or second not in entries:
            return
        if entries[first]["payload_hash"] == entries[second]["payload_hash"]:
            return
        if self._churn_pair(entries[first], entries[second]):
            # The two sides of the leg declare different policy versions:
            # possibly the PEP enforced one replica's answer while the
            # recorded PDP-out came from another — failover racing a
            # publish.  Both entries are on-chain with their ciphertexts
            # (churn is never taken on faith without them), so the
            # Analyser audits the claim (see module docstring).
            self._alert(state, record, emit, ctx, "policy-churn", corr_id, {
                "leg": [first, second],
                f"{first}-fingerprint": entries[first]["policy_fingerprint"],
                f"{second}-fingerprint": entries[second]["policy_fingerprint"],
                f"{first}-component": entries[first]["component"],
                f"{second}-component": entries[second]["component"],
            })
            # Announce the claim pair for audit exactly once — NOT gated
            # on the alert (a previous conflict may have consumed the
            # record's one policy-churn alert); leg entries are immutable
            # once both are recorded, so one audit suffices.
            announced = record.setdefault("churn_announced", {})
            leg_key = f"{first}:{second}"
            if leg_key not in announced:
                announced[leg_key] = True
                emit(EVENT_CHURN_REPORT, {
                    "correlation_id": corr_id,
                    "entry_type": second,
                })
            return
        self._alert(state, record, emit, ctx, alert_type, corr_id, {
            "leg": [first, second],
            f"{first}-hash": entries[first]["payload_hash"],
            f"{second}-hash": entries[second]["payload_hash"],
            f"{first}-component": entries[first]["component"],
            f"{second}-component": entries[second]["component"],
        })

    def _churn_pair(self, first: dict, second: dict) -> bool:
        """Do two conflicting decision reports qualify for the churn downgrade?

        Both sides must declare a policy stamp, the declared *versions*
        must differ (same-version conflicts are impossible honestly — the
        fingerprints may legitimately match, e.g. a rollback republishing
        an earlier document), and both must be auditable: ciphertext
        storage enabled and a ciphertext present on each side, or the
        Analyser could never verify the claims and the downgrade from
        equivocation/mismatch would be free for an attacker.
        """
        if not self.store_ciphertexts:
            return False
        if "ciphertext" not in first or "ciphertext" not in second:
            return False
        if not first.get("policy_fingerprint") or not second.get("policy_fingerprint"):
            return False
        return first.get("policy_version", 0) != second.get("policy_version", 0)

    def _leg_consistent(self, entries: dict, leg: tuple[str, str]) -> bool:
        first, second = leg
        if first not in entries or second not in entries:
            return True  # leg not covered by this deployment's probes
        return entries[first]["payload_hash"] == entries[second]["payload_hash"]

    def _maybe_complete(self, state: dict, record: dict, emit, ctx: ContractContext,
                        corr_id: str) -> None:
        if record["complete"]:
            return
        entries = record["entries"]
        if any(entry_type not in entries for entry_type in self.expected_entries):
            return
        request_ok = self._leg_consistent(entries, EntryType.REQUEST_LEG)
        decision_ok = self._leg_consistent(entries, EntryType.DECISION_LEG)
        if request_ok and decision_ok:
            record["complete"] = True
            record["completed_height"] = ctx.block_height
            state["pending"].pop(corr_id, None)
            # Completion order follows block height, so the retained index
            # stays sorted by completed height and pruning pops its front.
            state["retained"][corr_id] = ctx.block_height
            state["stats"]["verified"] += 1
            emit(EVENT_VERIFIED, {"correlation_id": corr_id,
                                  "height": ctx.block_height})

    # -- timeout sweep and pruning ------------------------------------------------

    def _tick(self, state: dict, ctx: ContractContext,
              emit: Callable[[str, dict], None]) -> dict:
        flagged = 0
        pruned = 0
        height = ctx.block_height
        pending = state["pending"]
        scanned = len(pending)
        for corr_id in list(pending):
            record = state["records"][corr_id]
            if height - record["first_height"] < self.timeout_blocks:
                continue
            missing = [entry_type for entry_type in self.expected_entries
                       if entry_type not in record["entries"]]
            if missing:
                self._alert(state, record, emit, ctx, "missing-log", corr_id, {
                    "missing": missing,
                    "present": sorted(record["entries"]),
                    "age_blocks": height - record["first_height"],
                })
                flagged += 1
            else:
                # All entries present but a leg mismatched earlier; the
                # mismatch alert already fired — nothing more to flag.
                record["alerted"]["missing-log"] = True
            pending.pop(corr_id, None)
        if self.retention_blocks > 0:
            retained = state["retained"]
            for corr_id, completed in list(retained.items()):
                if height - completed <= self.retention_blocks:
                    break  # completion order: the rest is younger still
                del state["records"][corr_id]
                del retained[corr_id]
                pruned += 1
        state["stats"]["pruned"] += pruned
        return {"ok": True, "flagged": flagged, "pruned": pruned,
                "scanned": scanned}

    # -- analyser-reported violations ---------------------------------------------

    def _report_violation(self, state: dict, args: dict, ctx: ContractContext,
                          emit: Callable[[str, dict], None]) -> dict:
        try:
            corr_id = args["correlation_id"]
            kind = args["kind"]
            details = dict(args.get("details", {}))
        except KeyError as exc:
            raise ContractError(f"report_violation missing argument: {exc}") from exc
        record = self._ensure_record(state, corr_id, ctx)
        details.setdefault("reported_by", ctx.sender)
        self._alert(state, record, emit, ctx, kind, corr_id, details)
        return {"ok": True}

    # -- alert bookkeeping ----------------------------------------------------------

    def _alert(self, state: dict, record: dict, emit, ctx: ContractContext,
               alert_type: str, corr_id: str, details: dict) -> bool:
        """Emit an alert once per (record, type); returns whether it fired."""
        if alert_type in record["alerted"]:
            return False
        record["alerted"][alert_type] = True
        state["stats"]["alerts"] += 1
        emit(EVENT_ALERT, {
            "alert_type": alert_type,
            "correlation_id": corr_id,
            "details": details,
            "height": ctx.block_height,
        })
        return True
