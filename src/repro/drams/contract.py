"""The DRAMS monitor smart contract.

Runs replicated on every federation blockchain node.  It stores, per
correlation id, the hash commitments (and ciphertexts, for later audit by
the Analyser) of the four monitoring points, and applies the paper's
"expressly devised algorithms" incrementally as entries arrive:

1. **Request-leg matching** — once both PEP-in and PDP-in commitments are
   present, they must be equal; otherwise the request was modified between
   interception and evaluation → ``REQUEST_MISMATCH``.
2. **Decision-leg matching** — once both PDP-out and PEP-out commitments
   are present, they must be equal; otherwise the decision was modified
   between issuance and enforcement → ``DECISION_MISMATCH``.
3. **Equivocation** — a second, different payload for an already-recorded
   monitoring point → ``EQUIVOCATION`` (replays, double reporting).
4. **Timeout sweep** — ``tick`` flags records whose expected entries did
   not all arrive within ``timeout_blocks`` of the first one →
   ``MISSING_LOG`` (circumvented components, suppressed probes).

The Analyser contributes decision-correctness verdicts via
``report_violation`` so that even *semantic* violations end up on-chain and
non-repudiable.

Alerts are contract *events*: they replicate with the chain, reach every
Logging Interface, and cannot be suppressed by any single tenant.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.blockchain.contracts import Contract, ContractContext, ContractError
from repro.drams.logs import EntryType

CONTRACT_NAME = "drams-monitor"

#: Event names emitted by the contract.
EVENT_ALERT = "Alert"
EVENT_VERIFIED = "AccessVerified"
EVENT_LOG_RECORDED = "LogRecorded"


class MonitorContract(Contract):
    """Replicated log store plus matching algorithms."""

    name = CONTRACT_NAME
    # Every method validates its arguments and raises before touching
    # state, so the engine may run invocations in place (fast path).
    checked_invoke = True

    def __init__(self, timeout_blocks: int = 6, retention_blocks: int = 50,
                 store_ciphertexts: bool = True,
                 expected_entries: tuple[str, ...] = EntryType.ALL,
                 enable_leg_matching: bool = True) -> None:
        """``expected_entries`` and ``enable_leg_matching`` exist for the
        ablation experiments (probe-placement and matching-location
        studies); production deployments keep the defaults."""
        if timeout_blocks < 1:
            raise ContractError("timeout_blocks must be >= 1")
        for entry_type in expected_entries:
            if entry_type not in EntryType.ALL:
                raise ContractError(f"unknown expected entry: {entry_type!r}")
        self.timeout_blocks = timeout_blocks
        self.retention_blocks = retention_blocks
        self.store_ciphertexts = store_ciphertexts
        self.expected_entries = tuple(expected_entries)
        self.enable_leg_matching = enable_leg_matching

    def initial_state(self) -> dict[str, Any]:
        return {
            "records": {},
            "stats": {"logs": 0, "alerts": 0, "verified": 0, "pruned": 0},
        }

    # -- dispatch -------------------------------------------------------------

    def invoke(self, state: dict[str, Any], method: str, args: dict[str, Any],
               ctx: ContractContext, emit: Callable[[str, dict], None]) -> Any:
        if method == "record_log":
            return self._record_log(state, args, ctx, emit)
        if method == "tick":
            return self._tick(state, ctx, emit)
        if method == "report_violation":
            return self._report_violation(state, args, ctx, emit)
        raise ContractError(f"unknown method: {method!r}")

    # -- log recording and incremental matching ----------------------------------

    def _record_log(self, state: dict, args: dict, ctx: ContractContext,
                    emit: Callable[[str, dict], None]) -> dict:
        try:
            corr_id = args["correlation_id"]
            entry_type = args["entry_type"]
            payload_hash = args["payload_hash"]
            tenant = args["tenant"]
            component = args["component"]
        except KeyError as exc:
            raise ContractError(f"record_log missing argument: {exc}") from exc
        if entry_type not in EntryType.ALL:
            raise ContractError(f"unknown entry type: {entry_type!r}")

        record = state["records"].setdefault(corr_id, {
            "first_height": ctx.block_height,
            "entries": {},
            "alerted": {},
            "complete": False,
        })
        entries = record["entries"]
        existing = entries.get(entry_type)
        if existing is not None:
            if existing["payload_hash"] == payload_hash:
                return {"ok": True, "duplicate": True}
            self._alert(state, record, emit, ctx, "equivocation", corr_id, {
                "entry_type": entry_type,
                "first_hash": existing["payload_hash"],
                "second_hash": payload_hash,
                "first_reporter": existing["component"],
                "second_reporter": component,
            })
            return {"ok": True, "equivocation": True}

        entry = {
            "payload_hash": payload_hash,
            "tenant": tenant,
            "component": component,
            "height": ctx.block_height,
        }
        if self.store_ciphertexts and "ciphertext" in args:
            entry["ciphertext"] = args["ciphertext"]
        entries[entry_type] = entry
        state["stats"]["logs"] += 1
        emit(EVENT_LOG_RECORDED, {
            "correlation_id": corr_id,
            "entry_type": entry_type,
            "tenant": tenant,
        })

        if self.enable_leg_matching:
            self._match_leg(state, record, emit, ctx, corr_id,
                            EntryType.REQUEST_LEG, "request-mismatch")
            self._match_leg(state, record, emit, ctx, corr_id,
                            EntryType.DECISION_LEG, "decision-mismatch")
        self._maybe_complete(state, record, emit, ctx, corr_id)
        return {"ok": True}

    def _match_leg(self, state: dict, record: dict, emit, ctx: ContractContext,
                   corr_id: str, leg: tuple[str, str], alert_type: str) -> None:
        first, second = leg
        entries = record["entries"]
        if first not in entries or second not in entries:
            return
        if entries[first]["payload_hash"] == entries[second]["payload_hash"]:
            return
        self._alert(state, record, emit, ctx, alert_type, corr_id, {
            "leg": [first, second],
            f"{first}-hash": entries[first]["payload_hash"],
            f"{second}-hash": entries[second]["payload_hash"],
            f"{first}-component": entries[first]["component"],
            f"{second}-component": entries[second]["component"],
        })

    def _leg_consistent(self, entries: dict, leg: tuple[str, str]) -> bool:
        first, second = leg
        if first not in entries or second not in entries:
            return True  # leg not covered by this deployment's probes
        return entries[first]["payload_hash"] == entries[second]["payload_hash"]

    def _maybe_complete(self, state: dict, record: dict, emit, ctx: ContractContext,
                        corr_id: str) -> None:
        if record["complete"]:
            return
        entries = record["entries"]
        if any(entry_type not in entries for entry_type in self.expected_entries):
            return
        request_ok = self._leg_consistent(entries, EntryType.REQUEST_LEG)
        decision_ok = self._leg_consistent(entries, EntryType.DECISION_LEG)
        if request_ok and decision_ok:
            record["complete"] = True
            record["completed_height"] = ctx.block_height
            state["stats"]["verified"] += 1
            emit(EVENT_VERIFIED, {"correlation_id": corr_id,
                                  "height": ctx.block_height})

    # -- timeout sweep and pruning ------------------------------------------------

    def _tick(self, state: dict, ctx: ContractContext,
              emit: Callable[[str, dict], None]) -> dict:
        flagged = 0
        pruned = 0
        height = ctx.block_height
        for corr_id, record in list(state["records"].items()):
            if record["complete"]:
                completed = record.get("completed_height", record["first_height"])
                if (self.retention_blocks > 0
                        and height - completed > self.retention_blocks):
                    del state["records"][corr_id]
                    pruned += 1
                continue
            if "missing-log" in record["alerted"]:
                continue
            if height - record["first_height"] >= self.timeout_blocks:
                missing = [entry_type for entry_type in self.expected_entries
                           if entry_type not in record["entries"]]
                if missing:
                    self._alert(state, record, emit, ctx, "missing-log", corr_id, {
                        "missing": missing,
                        "present": sorted(record["entries"]),
                        "age_blocks": height - record["first_height"],
                    })
                    flagged += 1
                else:
                    # All entries present but a leg mismatched earlier; the
                    # mismatch alert already fired — nothing more to flag.
                    record["alerted"]["missing-log"] = True
        state["stats"]["pruned"] += pruned
        return {"ok": True, "flagged": flagged, "pruned": pruned}

    # -- analyser-reported violations ---------------------------------------------

    def _report_violation(self, state: dict, args: dict, ctx: ContractContext,
                          emit: Callable[[str, dict], None]) -> dict:
        try:
            corr_id = args["correlation_id"]
            kind = args["kind"]
            details = dict(args.get("details", {}))
        except KeyError as exc:
            raise ContractError(f"report_violation missing argument: {exc}") from exc
        record = state["records"].setdefault(corr_id, {
            "first_height": ctx.block_height,
            "entries": {},
            "alerted": {},
            "complete": False,
        })
        details.setdefault("reported_by", ctx.sender)
        self._alert(state, record, emit, ctx, kind, corr_id, details)
        return {"ok": True}

    # -- alert bookkeeping ----------------------------------------------------------

    def _alert(self, state: dict, record: dict, emit, ctx: ContractContext,
               alert_type: str, corr_id: str, details: dict) -> None:
        if alert_type in record["alerted"]:
            return
        record["alerted"][alert_type] = True
        state["stats"]["alerts"] += 1
        emit(EVENT_ALERT, {
            "alert_type": alert_type,
            "correlation_id": corr_id,
            "details": details,
            "height": ctx.block_height,
        })
