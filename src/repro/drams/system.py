"""DRAMS deployment orchestrator.

Wires the full Figure 1 stack over a federation:

- one blockchain node + one Logging Interface per tenant (members and
  infrastructure), full-mesh gossip, all nodes mining (private PoW chain);
- probing agents on every member-tenant PEP and on every PDP replica the
  decision plane deploys (one probe per shard, following elastic
  membership live: shards added at runtime are probed before their first
  request, drained shards keep their probe until quiescent);
- the monitor smart contract deployed chain-wide;
- the Analyser with its own blockchain node, registered in the
  infrastructure tenant but in a separate section from the access control
  components (its node gives it an independent view of the chain, and its
  own PRP replica — assigned by the policy distribution plane — gives it
  an independent view of the policy history);
- a federation-wide :class:`~repro.drams.alerts.AlertBus` fed by every LI;
- periodic ``tick`` transactions driving the contract's timeout sweep, and
  optional periodic TPM attestation of the Logging Interfaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.blockchain.config import BlockchainConfig
from repro.blockchain.contracts import ContractRegistry
from repro.blockchain.node import BlockchainNode
from repro.common.errors import ValidationError
from repro.common.ids import new_id
from repro.crypto.signatures import SigningKey, VerifyingKey
from repro.crypto.symmetric import SymmetricKey
from repro.crypto.tpm import SimulatedTpm
from repro.drams.alerts import Alert, AlertBus, AlertType
from repro.drams.analyser import Analyser
from repro.drams.contract import CONTRACT_NAME, MonitorContract
from repro.drams.logs import EntryType
from repro.drams.logging_interface import LoggingInterface
from repro.drams.probe import (
    ProbeAgent,
    attach_pep_probes,
    attach_plane_probes,
    follow_plane_membership,
)
from repro.federation.federation import Federation
from repro.accesscontrol.pdp_service import PdpService
from repro.accesscontrol.pep import PolicyEnforcementPoint
from repro.accesscontrol.plane import DecisionPlane, as_plane
from repro.accesscontrol.prp import PolicyRetrievalPoint
from repro.policydist.plane import PolicyDistributionPlane, as_policy_plane


@dataclass
class DramsConfig:
    """Monitoring-deployment parameters."""

    chain: BlockchainConfig = field(default_factory=lambda: BlockchainConfig(
        chain_id="drams-chain",
        difficulty_bits=12.0,
        target_block_interval=1.0,
        pow_mode="simulated",
        confirmations=2,
    ))
    timeout_blocks: int = 6
    retention_blocks: int = 200
    tick_interval: float = 2.0
    analyser_sweep_interval: float = 2.0
    node_hashrate: float = 1024.0
    use_tpm: bool = True
    attestation_interval: float = 0.0  # seconds; 0 disables
    key_entropy: bytes = b"drams-federation-key"
    store_ciphertexts: bool = True
    # Policy provenance audit (see repro.policydist): honest replica skew
    # up to this many versions behind the policy in force is classified as
    # churn; anything further is a policy-violation alert.
    policy_staleness_bound: int = 1
    # How long (simulated seconds) the Analyser waits for its own PRP
    # replica to catch up before an unknown decision fingerprint is
    # reported as a tampered policy.  Must cover the distribution plane's
    # propagation delay plus one anti-entropy round.
    unknown_policy_grace: float = 5.0
    # Ablation knobs (see DESIGN.md section 5); keep defaults in production.
    expected_entries: tuple = EntryType.ALL
    enable_leg_matching: bool = True
    # Analyser mode: "full" audits every correlation (the paper's
    # exhaustive checker); "sampling" deploys a
    # :class:`repro.lightclient.sampling.SamplingAnalyser` that audits a
    # seeded hash-fraction with a closed-form detection bound.
    analyser_mode: str = "full"
    sample_rate: float = 0.1
    sample_seed: "int | str" = 0
    # Light-client cadence (attach_light_clients): header-sync and
    # receipt-sweep periods in simulated seconds.
    light_sync_interval: float = 0.5
    light_sweep_interval: float = 1.0

    def __post_init__(self) -> None:
        if self.timeout_blocks < 1:
            raise ValidationError("timeout_blocks must be >= 1")
        if self.tick_interval <= 0:
            raise ValidationError("tick_interval must be positive")
        if self.policy_staleness_bound < 0:
            raise ValidationError("policy_staleness_bound must be >= 0")
        if self.unknown_policy_grace < 0:
            raise ValidationError("unknown_policy_grace must be >= 0")
        if self.analyser_mode not in ("full", "sampling"):
            raise ValidationError(
                f"analyser_mode must be 'full' or 'sampling', got {self.analyser_mode!r}")
        if not 0.0 < self.sample_rate <= 1.0:
            raise ValidationError(
                f"sample_rate must be in (0, 1], got {self.sample_rate}")
        if self.light_sync_interval <= 0 or self.light_sweep_interval <= 0:
            raise ValidationError("light-client intervals must be positive")


class DramsSystem:
    """The deployed monitoring system for one federation."""

    def __init__(self, federation: Federation,
                 prp: "PolicyDistributionPlane | PolicyRetrievalPoint",
                 plane: "DecisionPlane | PdpService",
                 peps: dict[str, PolicyEnforcementPoint],
                 config: Optional[DramsConfig] = None) -> None:
        self.federation = federation
        # The policy distribution plane decides how policy reaches each
        # consumer; a bare PolicyRetrievalPoint (the pre-policydist calling
        # convention) is adopted into a single shared store.  ``self.prp``
        # stays the authority store for backwards compatibility; the
        # Analyser reads from its *own* replica so a tampered PDP-side
        # replica can never alter the auditor's view.
        self.policy_plane = as_policy_plane(prp).deploy(federation)
        self.prp = self.policy_plane.authority
        # The decision plane decides how many PDP evaluators exist at any
        # moment (elastic planes change membership mid-run; coverage
        # follows via _on_plane_membership); a bare PdpService (the
        # pre-plane calling convention) is adopted into a single-evaluator
        # plane.
        self.plane = as_plane(plane)
        self.pdp_services = self.plane.services
        if not self.pdp_services:
            raise ValidationError("decision plane has no deployed PDP services to monitor")
        #: The primary evaluator — kept as an attribute because the threat
        #: experiments compromise it by name (`drams.pdp_service`).
        self.pdp_service = self.pdp_services[0]
        self.peps = dict(peps)
        self.config = config or DramsConfig()
        self.alerts = AlertBus()
        self.federation_key = SymmetricKey.generate(entropy=self.config.key_entropy)
        self.nodes: dict[str, BlockchainNode] = {}
        self.interfaces: dict[str, LoggingInterface] = {}
        self.tpms: dict[str, SimulatedTpm] = {}
        self.expected_pcrs: dict[str, str] = {}
        self.probes: dict[str, ProbeAgent] = {}
        self.analyser: Optional[Analyser] = None
        #: Light-client plane (attach_light_clients): per-tenant header
        #: clients and receipt-auditing consumers.  Sideband by design —
        #: attaching them leaves the monitored system bit-identical.
        self.header_clients: dict[str, "HeaderClient"] = {}
        self.light_clients: dict[str, "LightProbeConsumer"] = {}
        self._keys: dict[str, VerifyingKey] = {}
        self._signing: dict[str, SigningKey] = {}
        self._stoppers: list[Callable[[], None]] = []
        self._started = False
        self.attestation_rounds = 0
        self._deploy()

    # -- key management ---------------------------------------------------------

    def _mint_identity(self, owner: str) -> SigningKey:
        key = SigningKey.generate(self.config.key_entropy + b"|" + owner.encode())
        self._signing[owner] = key
        self._keys[owner] = key.public
        return key

    def _key_lookup(self, owner: str) -> Optional[VerifyingKey]:
        return self._keys.get(owner)

    # -- deployment ----------------------------------------------------------------

    def _deploy(self) -> None:
        registry = ContractRegistry()
        registry.deploy(MonitorContract(
            timeout_blocks=self.config.timeout_blocks,
            retention_blocks=self.config.retention_blocks,
            store_ciphertexts=self.config.store_ciphertexts,
            expected_entries=tuple(self.config.expected_entries),
            enable_leg_matching=self.config.enable_leg_matching,
        ))
        tenant_names = [t.name for t in self.federation.member_tenants]
        tenant_names.append(self.federation.infrastructure_tenant.name)

        # Blockchain node + Logging Interface per tenant.
        for tenant_name in tenant_names:
            tenant = self.federation.tenant(tenant_name)
            node_address = tenant.address("bcnode")
            li_address = tenant.address("li")
            node_key = self._mint_identity(node_address)
            li_key = self._mint_identity(li_address)
            node = BlockchainNode(
                self.federation.network, node_address, self.config.chain,
                registry, self.federation.rng, key_lookup=self._key_lookup,
                signing_key=node_key, hashrate=self.config.node_hashrate)
            tenant.register_host(node_address)
            tpm = None
            if self.config.use_tpm:
                tpm = SimulatedTpm(tpm_id=f"tpm:{li_address}",
                                   endorsement_seed=li_address.encode())
                tpm.extend_pcr({"component": li_address, "role": "logging-interface",
                                "version": 1})
            li = LoggingInterface(
                self.federation.network, li_address, tenant_name, node,
                signing_key=li_key, federation_key=self.federation_key, tpm=tpm)
            tenant.register_host(li_address)
            li.on_alert(self.alerts.publish)
            self.nodes[tenant_name] = node
            self.interfaces[tenant_name] = li
            if tpm is not None:
                self.tpms[li_address] = tpm
                self.expected_pcrs[li_address] = tpm.pcr

        # The Analyser: its own node, infrastructure tenant, separate section.
        infra = self.federation.infrastructure_tenant
        analyser_node_address = infra.address("bcnode-analyser")
        analyser_address = infra.address("analyser")
        analyser_node_key = self._mint_identity(analyser_node_address)
        analyser_key = self._mint_identity(analyser_address)
        analyser_node = BlockchainNode(
            self.federation.network, analyser_node_address, self.config.chain,
            registry, self.federation.rng, key_lookup=self._key_lookup,
            signing_key=analyser_node_key, hashrate=self.config.node_hashrate)
        infra.register_host(analyser_node_address)
        analyser_kwargs = dict(
            signing_key=analyser_key, federation_key=self.federation_key,
            prp=self.policy_plane.retrieval_point_for("analyser"),
            policy_staleness_bound=self.config.policy_staleness_bound,
            unknown_policy_grace=self.config.unknown_policy_grace)
        if self.config.analyser_mode == "sampling":
            from repro.lightclient.sampling import SamplingAnalyser

            self.analyser = SamplingAnalyser(
                self.federation.network, analyser_address, analyser_node,
                sample_rate=self.config.sample_rate,
                sample_seed=self.config.sample_seed, **analyser_kwargs)
        else:
            self.analyser = Analyser(
                self.federation.network, analyser_address, analyser_node,
                **analyser_kwargs)
        infra.register_host(analyser_address)
        self.nodes["__analyser__"] = analyser_node

        # Every node serves light-client proof requests addressed by
        # monitor-contract coordinates (correlation id + entry type).
        from repro.lightclient.receipts import monitor_tx_resolver

        for node in self.nodes.values():
            node.tx_resolver = monitor_tx_resolver(node.chain)

        # Full-mesh gossip between all nodes.
        node_addresses = [node.address for node in self.nodes.values()]
        for node in self.nodes.values():
            node.connect(node_addresses)

        # Probes: each member PEP, plus *every* PDP replica the decision
        # plane deployed in the infrastructure tenant — monitoring
        # coverage follows the plane, so sharding never opens an
        # unobserved decision path.
        infra_li = self.interfaces[infra.name].address
        for tenant_name, pep in self.peps.items():
            li = self.interfaces.get(tenant_name)
            if li is None:
                raise ValidationError(f"no logging interface for tenant {tenant_name!r}")
            self.probes[f"pep:{tenant_name}"] = attach_pep_probes(pep, li.address)
        self.probes.update(attach_plane_probes(self.plane, infra.name, infra_li))
        # Elastic planes announce membership changes; monitoring coverage
        # must follow them live — a probe attaches to a new shard before
        # its first request and detaches from a drained shard only after
        # its last reply, so coverage never gaps.  The shared helper
        # implements the probe protocol; the local listener only keeps
        # ``pdp_services`` aligned with the plane.
        follow_plane_membership(self.plane, self.probes, infra.name, infra_li)
        self.plane.on_membership(self._track_plane_membership)

        self.federation.finalize_topology()

    def attach_light_clients(self, tenants: Optional[list[str]] = None,
                             min_confirmations: Optional[int] = None) -> dict:
        """Attach per-tenant light auditors (header client + receipt consumer).

        Each named member tenant gets a :class:`HeaderClient` syncing
        headers from the tenant's own blockchain node and a
        :class:`LightProbeConsumer` fetching and verifying a decision
        receipt for every access its PEP enforces.  Both are *sideband*
        hosts: they are not registered with any tenant (so topology
        finalisation never re-profiles their links), their links are
        RNG-free constant-latency pairs, and their message ids come from
        namespaced local counters — attaching them leaves the monitored
        system's decisions, alerts and chain bit-identical.

        Safe to call before or after :meth:`start`; returns the consumer
        map.  Idempotent per tenant.
        """
        from repro.lightclient.consumer import LightProbeConsumer
        from repro.lightclient.headers import HeaderClient
        from repro.lightclient.sideband import sideband_link

        names = (list(tenants) if tenants is not None
                 else [t.name for t in self.federation.member_tenants])
        depth = (min_confirmations if min_confirmations is not None
                 else self.config.chain.confirmations)
        network = self.federation.network
        for tenant_name in names:
            if tenant_name in self.light_clients:
                continue
            pep = self.peps.get(tenant_name)
            if pep is None:
                raise ValidationError(
                    f"no PEP to audit for tenant {tenant_name!r}")
            server = self.nodes[tenant_name].address
            header_client = HeaderClient(
                network, f"lc-headers@{tenant_name}", self.config.chain, server)
            consumer = LightProbeConsumer(
                network, f"lc-audit@{tenant_name}", header_client, server,
                federation_key=self.federation_key, min_confirmations=depth)
            sideband_link(network, header_client.address, server)
            sideband_link(network, consumer.address, server)
            consumer.attach_pep(pep)
            self.header_clients[tenant_name] = header_client
            self.light_clients[tenant_name] = consumer
            if self._started:
                self._arm_light_client(tenant_name)
        return dict(self.light_clients)

    def _arm_light_client(self, tenant_name: str) -> None:
        sim = self.federation.sim
        header_client = self.header_clients[tenant_name]
        consumer = self.light_clients[tenant_name]
        # No jitter: jitter callbacks would draw from a shared RNG stream.
        self._stoppers.append(sim.every(
            self.config.light_sync_interval, header_client.sync,
            label=f"lc-sync:{tenant_name}"))
        self._stoppers.append(sim.every(
            self.config.light_sweep_interval, consumer.sweep,
            label=f"lc-sweep:{tenant_name}"))

    def _track_plane_membership(self, event: str, service: PdpService) -> None:
        if event in ("added", "restarted") and service not in self.pdp_services:
            self.pdp_services.append(service)
        elif event in ("removed", "crashed") and service in self.pdp_services:
            # A removed shard is quiescent and off the network — and a
            # crashed one is abruptly so; leaving either listed would let
            # shard-indexed experiments target a dead host.  The primary
            # (``pdp_service``) stays pinned either way, and a restarted
            # shard re-lists itself.
            self.pdp_services.remove(service)

    # -- lifecycle --------------------------------------------------------------------

    def start(self) -> None:
        """Start mining, ticking, sweeping and (optionally) attestation."""
        if self._started:
            return
        self._started = True
        sim = self.federation.sim
        # Re-arm the policy plane's anti-entropy after a stop() (no-op on
        # first start — the plane runs from deployment).
        self.policy_plane.start()
        for node in self.nodes.values():
            node.start()
        infra_li = self.interfaces[self.federation.infrastructure_tenant.name]
        jitter_rng = self.federation.rng.fork("drams-ticks")
        self._stoppers.append(sim.every(
            self.config.tick_interval, lambda: infra_li.submit_tick(),
            label="drams-tick", jitter=lambda: jitter_rng.uniform(0, 0.05)))
        if self.analyser is not None and self.config.analyser_sweep_interval > 0:
            self._stoppers.append(sim.every(
                self.config.analyser_sweep_interval,
                lambda: self.analyser.sweep(), label="analyser-sweep"))
        if self.config.use_tpm and self.config.attestation_interval > 0:
            self._stoppers.append(sim.every(
                self.config.attestation_interval, self.run_attestation_round,
                label="tpm-attestation"))
        for tenant_name in self.light_clients:
            self._arm_light_client(tenant_name)

    def stop(self) -> None:
        for stopper in self._stoppers:
            stopper()
        self._stoppers.clear()
        for node in self.nodes.values():
            node.stop()
        # The policy plane's anti-entropy timers are periodic activity of
        # the monitored deployment too; a stopped system must go quiet.
        self.policy_plane.stop()
        self._started = False

    # -- attestation ------------------------------------------------------------------

    def run_attestation_round(self) -> list[str]:
        """Challenge every TPM-protected LI; alert on measurement drift.

        Returns the addresses that failed attestation in this round.
        """
        self.attestation_rounds += 1
        failed = []
        for address, tpm in self.tpms.items():
            nonce = new_id("attest")
            report = tpm.attest(nonce)
            expected = self.expected_pcrs[address]
            if not report.verify(tpm.endorsement_key, expected, nonce):
                failed.append(address)
                self.alerts.publish(Alert(
                    alert_type=AlertType.ATTESTATION_FAILURE,
                    correlation_id=address,
                    details={"expected_pcr": expected, "reported_pcr": report.pcr_value},
                    block_height=self.reference_chain().height,
                    raised_at=self.federation.sim.now,
                ))
        return failed

    # -- inspection ----------------------------------------------------------------------

    def reference_chain(self):
        """The infrastructure tenant's chain view (for metrics/queries)."""
        return self.nodes[self.federation.infrastructure_tenant.name].chain

    def monitor_state(self) -> dict:
        return self.reference_chain().state_of(CONTRACT_NAME)

    def commit_latencies(self) -> list[float]:
        """Log-submission → finality latencies across all LIs."""
        out: list[float] = []
        for li in self.interfaces.values():
            out.extend(li.commit_latencies)
        return out

    def stats(self) -> dict:
        state = self.monitor_state()
        chain = self.reference_chain()
        out = {
            "chain_height": chain.height,
            "reorgs": chain.reorgs,
            "monitor": dict(state["stats"]),
            "alerts_by_type": {t.value: self.alerts.count(t)
                               for t in AlertType if self.alerts.count(t)},
            "logs_submitted": sum(li.logs_submitted for li in self.interfaces.values()),
            "analyser_checked": self.analyser.checked if self.analyser else 0,
            "policy_audit": {
                "churn_observed": self.analyser.churn_observed if self.analyser else 0,
                "policy_violations": (self.analyser.policy_violations_reported
                                      if self.analyser else 0),
                "distribution": self.policy_plane.describe(),
            },
        }
        if self.light_clients:
            out["light_clients"] = {
                name: consumer.stats()
                for name, consumer in self.light_clients.items()}
        sampling_stats = getattr(self.analyser, "sampling_stats", None)
        if callable(sampling_stats):
            out["sampling"] = sampling_stats()
        return out
