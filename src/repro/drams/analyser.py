"""The Analyser.

A standalone entity logically placed in the infrastructure tenant but
deployed in a *different cloud section* from the access control components
(so compromising the PDP's section does not silence it).  It dynamically
consumes the gathered logs and checks, against a formally-grounded
representation of the policies in force, that every decision the PDP issued
is the one the policies entail.

Dataflow per decision:

1. its blockchain node applies a block containing a ``pdp-out`` log entry →
   contract emits ``LogRecorded`` → the Analyser wakes up;
2. it reads the correlation's stored ciphertexts from the replicated
   contract state, decrypts the request (``pdp-in``, falling back to
   ``pep-in``) and the decision (``pdp-out``) with the federation key K;
3. the :class:`~repro.analysis.semantics.DecisionOracle` for the decision's
   *declared* policy version re-derives the expected decision;
4. on disagreement it submits a ``report_violation`` transaction, so the
   ``INCORRECT_DECISION`` alert is raised *on-chain* and reaches every
   tenant's Logging Interface.

Policy provenance audit: every decision is stamped with the policy
``(version, fingerprint)`` the evaluator claims it decided under.  The
Analyser checks that stamp against its *own* policy history (its PRP
replica — an attacker altering a PDP's replica cannot alter the
Analyser's):

- **known fingerprint, skew within ``policy_staleness_bound``** — honest
  propagation churn: the decision is audited against the declared
  version's oracle and counted in ``churn_observed`` when the declared
  version trails the one in force at decision time;
- **known fingerprint, skew beyond the bound** — a replica serving a
  long-superseded policy (``StalePolicyReplayAttack``) → on-chain
  ``policy-violation``;
- **unknown fingerprint** — either the Analyser's replica is still behind
  (the correlation is left pending for ``unknown_policy_grace`` seconds of
  simulated time and re-examined by the sweep) or, once the grace is
  exhausted, a tampered policy document no publisher ever signed off
  (``TamperedPrpReplicaAttack``) → on-chain ``policy-violation``.

Churn audit: the monitor contract downgrades a conflicting decision
report to ``POLICY_CHURN`` when the two sides declare different policy
versions — but those stamps live in attacker-reachable payloads, so the
Analyser treats every churn alert as a claim to verify.  It decrypts each
churn-classified decision payload (the recorded ``pdp-out``/``pep-out``
entries plus the contract's kept ``churn_reports``) and demands that the
claimed fingerprint belongs to a published version *and* that the
decision is exactly what that version entails for the request.  Any
failed claim becomes an on-chain ``policy-violation`` — so a tamperer can
only earn the churn label by acting as an honest replica under a real
policy version, which is churn by definition.

Oracles are created once per policy version and cached; with the
``compiled_oracle`` fast-path layer on, that single creation compiles the
document through the target index, so the per-decision cost is an indexed
evaluation rather than a document-tree interpretation.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.semantics import DecisionOracle
from repro.blockchain.contracts import ContractEvent
from repro.blockchain.node import BlockchainNode
from repro.blockchain.transaction import Transaction
from repro.common.errors import CryptoError
from repro.common.serialization import from_json
from repro.crypto.signatures import SigningKey
from repro.crypto.symmetric import EncryptedBlob, SymmetricKey
from repro.drams.contract import (
    CONTRACT_NAME,
    EVENT_CHURN_REPORT,
    EVENT_LOG_RECORDED,
)
from repro.drams.logs import EntryType
from repro.accesscontrol.prp import PolicyRetrievalPoint, PolicyVersion
from repro.simnet.network import Host, Message, Network


class Analyser(Host):
    """Decision-correctness checker backed by the formal semantics."""

    def __init__(self, network: Network, address: str,
                 node: BlockchainNode, signing_key: SigningKey,
                 federation_key: SymmetricKey, prp: PolicyRetrievalPoint,
                 policy_staleness_bound: int = 1,
                 unknown_policy_grace: float = 5.0) -> None:
        super().__init__(network, address)
        self.node = node
        self.signing_key = signing_key
        self.federation_key = federation_key
        self.prp = prp
        self.policy_staleness_bound = policy_staleness_bound
        self.unknown_policy_grace = unknown_policy_grace
        self.checked = 0
        self.violations_reported = 0
        self.policy_violations_reported = 0
        self.churn_observed = 0
        self.churn_audits = 0
        self.decryption_failures = 0
        self.unresolved = 0
        self._seq = 0
        self._verified: set[str] = set()
        # Pending-correlation index: every correlation seen in a checkable
        # contract event but not yet verified.  Sweeps walk this index
        # instead of the full replicated records map, so their cost is
        # O(pending) rather than O(all correlations ever recorded).  A
        # dict (not a set) keeps iteration in insertion order — string
        # hashing is salted per process, and sweep order feeds the chain.
        self._pending: dict[str, None] = {}
        # Churn-alerted correlations whose claims are not yet fully
        # audited (same insertion-ordered-index pattern as ``_pending``),
        # and correlations whose churn claims were already refuted (no
        # point re-auditing — the on-chain alert is deduped anyway).
        self._churn_pending: dict[str, None] = {}
        self._churn_refuted: set[str] = set()
        # Correlations whose declared policy fingerprint we have not seen
        # yet → the simulated time we first failed to resolve it.  Within
        # the grace window the likeliest cause is our own replica lagging.
        self._unknown_since: dict[str, float] = {}
        self._oracles: dict[int, DecisionOracle] = {}
        self._versions: list[PolicyVersion] = list(prp.history())
        self._fingerprints: dict[str, PolicyVersion] = {
            version.fingerprint: version for version in self._versions
        }
        # When each version became visible *to us* — the basis for "in
        # force at decision time".  History present at construction is
        # treated as always known.
        self._seen_at: dict[int, float] = {v.version: 0.0 for v in self._versions}
        prp.on_publish(self._on_policy_published)
        node.chain.subscribe_events(self._on_contract_event)

    @property
    def pending_correlations(self) -> int:
        """Size of the unverified-correlation index (per-sweep workload)."""
        return len(self._pending)

    # -- policy versions ------------------------------------------------------

    def _on_policy_published(self, version: PolicyVersion) -> None:
        self._versions.append(version)
        self._fingerprints[version.fingerprint] = version
        self._seen_at[version.version] = self.sim.now

    def _oracle_for(self, version: PolicyVersion) -> DecisionOracle:
        oracle = self._oracles.get(version.version)
        if oracle is None:
            oracle = DecisionOracle(version.document)
            self._oracles[version.version] = oracle
        return oracle

    def _version_in_force_at(self, when: float) -> Optional[PolicyVersion]:
        """Latest version this Analyser had seen by simulated time ``when``."""
        in_force = None
        for version in self._versions:
            if self._seen_at.get(version.version, 0.0) <= when:
                in_force = version
        return in_force

    # -- event-driven checking ---------------------------------------------------

    def receive(self, message: Message) -> None:  # pragma: no cover - no direct msgs
        return

    def _on_contract_event(self, event: ContractEvent, block_hash: str) -> None:
        if event.contract != CONTRACT_NAME:
            return
        if event.name == EVENT_CHURN_REPORT:
            # A churn classification is a *claim* the contract cannot
            # verify (it has no policy history); audit it here.  The
            # contract emits one event per conflicting claim — not
            # deduped like the alert — so claims arriving after the
            # first churn alert are audited too.
            correlation_id = event.payload["correlation_id"]
            self._churn_pending[correlation_id] = None
            self._audit_churn(correlation_id)
            return
        if event.name != EVENT_LOG_RECORDED:
            return
        entry_type = event.payload.get("entry_type")
        # A decision becomes checkable once pdp-out AND a request leg are
        # on-chain; either side may land first, so react to both.
        if entry_type not in (EntryType.PDP_OUT, EntryType.PDP_IN, EntryType.PEP_IN):
            return
        correlation_id = event.payload["correlation_id"]
        if correlation_id in self._verified:
            return
        if not self._admit(correlation_id):
            return
        tracer = self.network.telemetry
        if tracer is not None:
            # Open from first admission to verification — the "audit lag"
            # tail of the decision's critical path.  Idempotent across the
            # several contract events one correlation produces.
            tracer.open_span(("analyser.audit", correlation_id),
                             "analyser.audit", self.address,
                             parent=tracer.context_for(correlation_id),
                             category="monitor")
        self._pending[correlation_id] = None
        self._check_decision(correlation_id)

    def _admit(self, correlation_id: str) -> bool:
        """Audit-admission hook, called once per checkable contract event.

        The exhaustive Analyser audits every correlation.  Sampling
        subclasses (:class:`repro.lightclient.sampling.SamplingAnalyser`)
        override this with a deterministic seeded predicate, trading
        per-decision audit cost for a closed-form detection bound.  Churn
        claims are never sampled — they are alert-driven and rare.
        """
        return True

    def _decrypt_entry(self, entry: Optional[dict]) -> Optional[dict]:
        if entry is None or "ciphertext" not in entry:
            return None
        blob = EncryptedBlob.from_dict(entry["ciphertext"])
        try:
            plaintext = self.federation_key.decrypt(blob)
        except CryptoError:
            self.decryption_failures += 1
            return None
        return from_json(plaintext.decode("utf-8"))

    def _read_plaintext(self, record: dict, entry_type: str) -> Optional[dict]:
        return self._decrypt_entry(record["entries"].get(entry_type))

    def _check_decision(self, correlation_id: str) -> None:
        records = self.node.chain.state_of(CONTRACT_NAME)["records"]
        record = records.get(correlation_id)
        if record is None:
            return
        decision_payload = self._read_plaintext(record, EntryType.PDP_OUT)
        request_payload = (self._read_plaintext(record, EntryType.PDP_IN)
                           or self._read_plaintext(record, EntryType.PEP_IN))
        if decision_payload is None or request_payload is None:
            # Request leg not yet on chain; retry when it lands (the
            # LogRecorded event for it will not re-trigger pdp-out, so we
            # check again on the next pdp-in/pep-in event instead).
            self.unresolved += 1
            return
        stamped_fp = decision_payload.get("policy_fingerprint", "")
        if stamped_fp and stamped_fp not in self._fingerprints:
            # Unknown provenance: our replica may simply be behind.  Leave
            # the correlation pending and let the sweep retry; only when
            # the grace is exhausted does "unknown" mean "tampered".
            first_failed = self._unknown_since.setdefault(
                correlation_id, self.sim.now)
            if self.sim.now - first_failed < self.unknown_policy_grace:
                self.unresolved += 1
                return
        self._verified.add(correlation_id)
        self._pending.pop(correlation_id, None)
        self._unknown_since.pop(correlation_id, None)
        self.checked += 1
        tracer = self.network.telemetry
        if tracer is not None:
            tracer.close_span(("analyser.audit", correlation_id),
                              "checked", strict=False)
        observed = decision_payload["decision"]
        if stamped_fp and stamped_fp not in self._fingerprints:
            # No publisher ever produced this document: a tampered PRP
            # replica fed the evaluator a policy outside the history.
            # (Reported even while our own history is empty — a stamp
            # with no publishable origin is bad provenance either way.)
            self.policy_violations_reported += 1
            self._submit_violation(correlation_id, "policy-violation", {
                "reason": "unknown-policy-fingerprint",
                "claimed_fingerprint": stamped_fp,
                "claimed_version": decision_payload.get("policy_version", 0),
            })
            return
        if not self._versions:
            return
        if stamped_fp:
            version = self._fingerprints[stamped_fp]
            decided_at = record["entries"][EntryType.PDP_OUT].get(
                "observed_at", self.sim.now)
            in_force = self._version_in_force_at(decided_at) or self._versions[-1]
            skew = in_force.version - version.version
            if skew > self.policy_staleness_bound:
                # Honest propagation cannot lag this far: the replica is
                # replaying a long-superseded policy.
                self.policy_violations_reported += 1
                self._submit_violation(correlation_id, "policy-violation", {
                    "reason": "staleness-bound-exceeded",
                    "stamped_version": version.version,
                    "in_force_version": in_force.version,
                    "skew": skew,
                    "bound": self.policy_staleness_bound,
                })
                return
            if skew > 0:
                # Honest churn: the decision trailed a publish within the
                # bound.  Audit it against the policy it was made under.
                self.churn_observed += 1
        else:
            # Unstamped decision (no policy published, or a fabricated
            # decision that never saw an evaluator): check the head.
            version = self._versions[-1]
        oracle = self._oracle_for(version)
        expected = oracle.expected_decision(request_payload["content"])
        if expected != observed:
            self.violations_reported += 1
            self._submit_violation(correlation_id, "incorrect-decision", {
                "expected": expected,
                "observed": observed,
                "policy_version": version.version,
            })

    # -- churn-claim auditing -----------------------------------------------------

    def _audit_churn(self, correlation_id: str) -> None:
        """Verify every policy-version claim behind a churn classification.

        Each churn-classified decision payload must (a) name a fingerprint
        our policy history contains and (b) carry exactly the decision
        that version entails for the request.  A claim that fails either
        test is reported as an on-chain ``policy-violation`` — the
        downgrade from mismatch/equivocation to churn is never taken on
        the attacker's word.
        """
        if correlation_id in self._churn_refuted:
            self._churn_pending.pop(correlation_id, None)
            return
        records = self.node.chain.state_of(CONTRACT_NAME)["records"]
        record = records.get(correlation_id)
        if record is None:
            # Pruned by retention (or reorged away): drop all bookkeeping,
            # including any in-flight grace entry.
            self._churn_pending.pop(correlation_id, None)
            self._unknown_since.pop(f"{correlation_id}#churn", None)
            return
        request_payload = (self._read_plaintext(record, EntryType.PDP_IN)
                           or self._read_plaintext(record, EntryType.PEP_IN))
        if request_payload is None:
            # Request leg not on chain yet; the sweep retries.
            self.unresolved += 1
            return
        # A claim is the stored metadata (declared stamp + ciphertext) of
        # every churn-classified decision report: the recorded
        # pdp-out/pep-out entries plus the contract's kept churn_reports.
        claims = []
        for entry_type in (EntryType.PDP_OUT, EntryType.PEP_OUT):
            entry = record["entries"].get(entry_type)
            if entry is not None and entry.get("policy_fingerprint"):
                claims.append((entry_type, entry))
        for report in record.get("churn_reports", []):
            if report.get("policy_fingerprint"):
                claims.append((report["entry_type"], report))
        grace_key = f"{correlation_id}#churn"
        waiting = False
        for entry_type, meta in claims:
            declared = meta["policy_fingerprint"]
            payload = self._decrypt_entry(meta)
            if payload is None or payload.get("policy_fingerprint") != declared:
                # Undecryptable, or the committed payload contradicts the
                # stamp declared to the contract: the claim cannot be
                # verified, so the downgrade is refused, not granted.
                self.policy_violations_reported += 1
                self._churn_refuted.add(correlation_id)
                self._submit_violation(correlation_id, "policy-violation", {
                    "reason": "churn-claim-unverifiable",
                    "entry_type": entry_type,
                    "claimed_fingerprint": declared,
                })
                break
            version = self._fingerprints.get(declared)
            if version is None:
                # Possibly our own replica lagging: wait out the grace.
                first_failed = self._unknown_since.setdefault(
                    grace_key, self.sim.now)
                if self.sim.now - first_failed < self.unknown_policy_grace:
                    waiting = True
                    continue
                self.policy_violations_reported += 1
                self._churn_refuted.add(correlation_id)
                self._submit_violation(correlation_id, "policy-violation", {
                    "reason": "churn-claims-unknown-fingerprint",
                    "entry_type": entry_type,
                    "claimed_fingerprint": declared,
                    "claimed_version": payload.get("policy_version", 0),
                })
                break
            expected = self._oracle_for(version).expected_decision(
                request_payload["content"])
            if expected != payload["decision"]:
                self.policy_violations_reported += 1
                self._churn_refuted.add(correlation_id)
                self._submit_violation(correlation_id, "policy-violation", {
                    "reason": "churn-claim-refuted",
                    "entry_type": entry_type,
                    "expected": expected,
                    "observed": payload["decision"],
                    "policy_version": version.version,
                })
                break
        else:
            if waiting:
                self.unresolved += 1
                return
        self._churn_pending.pop(correlation_id, None)
        self._unknown_since.pop(grace_key, None)
        self.churn_audits += 1

    def _submit_violation(self, correlation_id: str, kind: str,
                          details: dict) -> None:
        tracer = self.network.telemetry
        if tracer is not None:
            tracer.instant("analyser.violation", self.address,
                           context=tracer.context_for(correlation_id),
                           category="monitor",
                           attrs={"kind": kind,
                                  "reason": details.get("reason", "")})
        self._seq += 1
        tx = Transaction(
            sender=self.address,
            contract=CONTRACT_NAME,
            method="report_violation",
            args={
                "correlation_id": correlation_id,
                "kind": kind,
                "details": details,
            },
            seq=self._seq,
        ).sign(self.signing_key)
        self.node.submit_transaction(tx)

    # -- sweeping (periodic re-check of unresolved correlations) ---------------------

    def sweep(self) -> int:
        """Re-examine pending correlations whose decision leg is on-chain.

        Covers orderings where the request leg landed after the decision
        leg, unknown-fingerprint decisions waiting out the grace window,
        and churn claims whose audit could not complete yet.  Walks the
        pending-correlation indices — O(pending), not O(records) — so
        steady-state sweeps over a mostly-verified chain cost nothing.
        Returns the number of decisions checked.
        """
        tracer = self.network.telemetry
        if tracer is None:
            return self._sweep()
        with tracer.span("analyser.sweep", self.address, parent=None,
                         category="background") as span:
            checked = self._sweep()
            span.attrs["checked"] = checked
        return checked

    def _sweep(self) -> int:
        for correlation_id in list(self._churn_pending):
            self._audit_churn(correlation_id)
        if not self._pending:
            return 0
        records = self.node.chain.state_of(CONTRACT_NAME)["records"]
        before = self.checked
        for correlation_id in list(self._pending):
            record = records.get(correlation_id)
            if record is None:
                # Pruned by retention (or reorged away): nothing left to
                # check against, stop re-visiting it.
                self._pending.pop(correlation_id, None)
                self._unknown_since.pop(correlation_id, None)
                continue
            if EntryType.PDP_OUT in record["entries"]:
                self._check_decision(correlation_id)
        return self.checked - before
