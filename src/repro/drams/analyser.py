"""The Analyser.

A standalone entity logically placed in the infrastructure tenant but
deployed in a *different cloud section* from the access control components
(so compromising the PDP's section does not silence it).  It dynamically
consumes the gathered logs and checks, against a formally-grounded
representation of the policies in force, that every decision the PDP issued
is the one the policies entail.

Dataflow per decision:

1. its blockchain node applies a block containing a ``pdp-out`` log entry →
   contract emits ``LogRecorded`` → the Analyser wakes up;
2. it reads the correlation's stored ciphertexts from the replicated
   contract state, decrypts the request (``pdp-in``, falling back to
   ``pep-in``) and the decision (``pdp-out``) with the federation key K;
3. the :class:`~repro.analysis.semantics.DecisionOracle` for the active
   policy version re-derives the expected decision;
4. on disagreement it submits a ``report_violation`` transaction, so the
   ``INCORRECT_DECISION`` alert is raised *on-chain* and reaches every
   tenant's Logging Interface.

The oracle tracks PRP publications: decisions are checked against the
policy version that was in force when they were made (by decision time).
Oracles are created once per policy version and cached; with the
``compiled_oracle`` fast-path layer on, that single creation compiles the
document through the target index, so the per-decision cost is an indexed
evaluation rather than a document-tree interpretation.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.semantics import DecisionOracle
from repro.blockchain.contracts import ContractEvent
from repro.blockchain.node import BlockchainNode
from repro.blockchain.transaction import Transaction
from repro.common.errors import CryptoError
from repro.common.serialization import from_json
from repro.crypto.signatures import SigningKey
from repro.crypto.symmetric import EncryptedBlob, SymmetricKey
from repro.drams.contract import CONTRACT_NAME, EVENT_LOG_RECORDED
from repro.drams.logs import EntryType
from repro.accesscontrol.prp import PolicyRetrievalPoint, PolicyVersion
from repro.simnet.network import Host, Message, Network


class Analyser(Host):
    """Decision-correctness checker backed by the formal semantics."""

    def __init__(self, network: Network, address: str,
                 node: BlockchainNode, signing_key: SigningKey,
                 federation_key: SymmetricKey, prp: PolicyRetrievalPoint) -> None:
        super().__init__(network, address)
        self.node = node
        self.signing_key = signing_key
        self.federation_key = federation_key
        self.prp = prp
        self.checked = 0
        self.violations_reported = 0
        self.decryption_failures = 0
        self.unresolved = 0
        self._seq = 0
        self._verified: set[str] = set()
        # Pending-correlation index: every correlation seen in a checkable
        # contract event but not yet verified.  Sweeps walk this index
        # instead of the full replicated records map, so their cost is
        # O(pending) rather than O(all correlations ever recorded).  A
        # dict (not a set) keeps iteration in insertion order — string
        # hashing is salted per process, and sweep order feeds the chain.
        self._pending: dict[str, None] = {}
        self._oracles: dict[int, DecisionOracle] = {}
        self._versions: list[PolicyVersion] = list(prp.history())
        prp.on_publish(self._versions.append)
        node.chain.subscribe_events(self._on_contract_event)

    @property
    def pending_correlations(self) -> int:
        """Size of the unverified-correlation index (per-sweep workload)."""
        return len(self._pending)

    # -- policy versions ------------------------------------------------------

    def _oracle_for(self, version: PolicyVersion) -> DecisionOracle:
        oracle = self._oracles.get(version.version)
        if oracle is None:
            oracle = DecisionOracle(version.document)
            self._oracles[version.version] = oracle
        return oracle

    # -- event-driven checking ---------------------------------------------------

    def receive(self, message: Message) -> None:  # pragma: no cover - no direct msgs
        return

    def _on_contract_event(self, event: ContractEvent, block_hash: str) -> None:
        if event.contract != CONTRACT_NAME or event.name != EVENT_LOG_RECORDED:
            return
        entry_type = event.payload.get("entry_type")
        # A decision becomes checkable once pdp-out AND a request leg are
        # on-chain; either side may land first, so react to both.
        if entry_type not in (EntryType.PDP_OUT, EntryType.PDP_IN, EntryType.PEP_IN):
            return
        correlation_id = event.payload["correlation_id"]
        if correlation_id in self._verified:
            return
        self._pending[correlation_id] = None
        self._check_decision(correlation_id)

    def _read_plaintext(self, record: dict, entry_type: str) -> Optional[dict]:
        entry = record["entries"].get(entry_type)
        if entry is None or "ciphertext" not in entry:
            return None
        blob = EncryptedBlob.from_dict(entry["ciphertext"])
        try:
            plaintext = self.federation_key.decrypt(blob)
        except CryptoError:
            self.decryption_failures += 1
            return None
        return from_json(plaintext.decode("utf-8"))

    def _check_decision(self, correlation_id: str) -> None:
        records = self.node.chain.state_of(CONTRACT_NAME)["records"]
        record = records.get(correlation_id)
        if record is None:
            return
        decision_payload = self._read_plaintext(record, EntryType.PDP_OUT)
        request_payload = (self._read_plaintext(record, EntryType.PDP_IN)
                           or self._read_plaintext(record, EntryType.PEP_IN))
        if decision_payload is None or request_payload is None:
            # Request leg not yet on chain; retry when it lands (the
            # LogRecorded event for it will not re-trigger pdp-out, so we
            # check again on the next pdp-in/pep-in event instead).
            self.unresolved += 1
            return
        self._verified.add(correlation_id)
        self._pending.pop(correlation_id, None)
        self.checked += 1
        # Check against the latest published version: PRP history is the
        # authority on "policies currently in force" (an attacker altering
        # the PDP's view cannot alter the Analyser's).
        version = self._versions[-1] if self._versions else None
        if version is None:
            return
        oracle = self._oracle_for(version)
        expected = oracle.expected_decision(request_payload["content"])
        observed = decision_payload["decision"]
        if expected != observed:
            self.violations_reported += 1
            self._submit_violation(correlation_id, expected, observed,
                                   version.version)

    def _submit_violation(self, correlation_id: str, expected: str,
                          observed: str, policy_version: int) -> None:
        self._seq += 1
        tx = Transaction(
            sender=self.address,
            contract=CONTRACT_NAME,
            method="report_violation",
            args={
                "correlation_id": correlation_id,
                "kind": "incorrect-decision",
                "details": {
                    "expected": expected,
                    "observed": observed,
                    "policy_version": policy_version,
                },
            },
            seq=self._seq,
        ).sign(self.signing_key)
        self.node.submit_transaction(tx)

    # -- sweeping (periodic re-check of unresolved correlations) ---------------------

    def sweep(self) -> int:
        """Re-examine pending correlations whose decision leg is on-chain.

        Covers orderings where the request leg landed after the decision
        leg.  Walks the pending-correlation index — O(pending), not
        O(records) — so steady-state sweeps over a mostly-verified chain
        cost nothing.  Returns the number of decisions checked.
        """
        if not self._pending:
            return 0
        records = self.node.chain.state_of(CONTRACT_NAME)["records"]
        before = self.checked
        for correlation_id in list(self._pending):
            record = records.get(correlation_id)
            if record is None:
                # Pruned by retention (or reorged away): nothing left to
                # check against, stop re-visiting it.
                self._pending.pop(correlation_id, None)
                continue
            if EntryType.PDP_OUT in record["entries"]:
                self._check_decision(correlation_id)
        return self.checked - before
