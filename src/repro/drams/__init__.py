"""DRAMS — Decentralised Runtime Access Monitoring System.

The paper's primary contribution: runtime monitoring for a distributed
access control system, resilient to attacks on the monitoring itself by
storing logs and running integrity checks on a smart-contract blockchain.

Components (Figure 1):

- :mod:`repro.drams.probe` — probing agents intercepting the four
  monitoring points (PEP-in, PDP-in, PDP-out, PEP-enforce),
- :mod:`repro.drams.logging_interface` — the per-tenant Logging Interface:
  encrypts log payloads with the federation key K, submits them as signed
  blockchain transactions, and surfaces smart-contract alert events,
- :mod:`repro.drams.contract` — the monitor smart contract: stores log
  commitments and runs the matching algorithms that detect tampered
  requests/decisions, equivocation and missing logs,
- :mod:`repro.drams.analyser` — the standalone Analyser: independently
  re-derives expected decisions from the policies in force and reports
  incorrect decisions on-chain,
- :mod:`repro.drams.system` — the orchestrator deploying all of the above
  over a federation.
"""

from repro.drams.alerts import Alert, AlertType, AlertBus
from repro.drams.logs import EntryType, LogEntry
from repro.drams.contract import MonitorContract
from repro.drams.probe import (
    ProbeAgent,
    attach_pdp_probes,
    attach_pep_probes,
    attach_plane_probes,
)
from repro.drams.logging_interface import LoggingInterface
from repro.drams.analyser import Analyser
from repro.drams.system import DramsConfig, DramsSystem

__all__ = [
    "Alert",
    "AlertType",
    "AlertBus",
    "EntryType",
    "LogEntry",
    "MonitorContract",
    "ProbeAgent",
    "attach_pep_probes",
    "attach_pdp_probes",
    "attach_plane_probes",
    "LoggingInterface",
    "Analyser",
    "DramsConfig",
    "DramsSystem",
]
