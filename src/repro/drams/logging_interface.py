"""The Logging Interface (LI).

One per tenant.  It is the bridge between off-chain probes and the
blockchain:

- **storing**: receives ``drams_log`` messages from agents, encrypts the
  payload under the federation key K (on-chain data is visible to every
  participant), attaches the plaintext's hash commitment, signs the whole
  thing as a transaction and submits it through the tenant's blockchain
  node;
- **alerting**: subscribes to the monitor contract's events; ``Alert``
  events are decoded, deduplicated and pushed to the local alert handlers
  (and the federation-wide :class:`~repro.drams.alerts.AlertBus`).

Key handling: when a :class:`~repro.crypto.tpm.SimulatedTpm` is supplied,
K is *sealed* to the LI's measured state and unsealed per use — a tampered
LI loses the key, which is the mitigation sketched in the paper's System
Integrity discussion.  Without a TPM the key sits in the software keystore.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.blockchain.contracts import ContractEvent
from repro.blockchain.node import BlockchainNode
from repro.blockchain.transaction import Transaction
from repro.common.errors import CryptoError
from repro.common.serialization import from_json
from repro.crypto.keystore import KeyStore
from repro.crypto.signatures import SigningKey
from repro.crypto.symmetric import EncryptedBlob, SymmetricKey
from repro.crypto.tpm import SimulatedTpm
from repro.drams.alerts import Alert, AlertType
from repro.drams.contract import CONTRACT_NAME, EVENT_ALERT
from repro.drams.logs import LogEntry
from repro.simnet.network import Host, Message, Network

FEDERATION_KEY_NAME = "federation-K"


class LoggingInterface(Host):
    """Per-tenant logging endpoint and alert gateway."""

    def __init__(self, network: Network, address: str, tenant: str,
                 node: BlockchainNode, signing_key: SigningKey,
                 federation_key: SymmetricKey,
                 tpm: Optional[SimulatedTpm] = None) -> None:
        super().__init__(network, address)
        self.tenant = tenant
        self.node = node
        self.keystore = KeyStore(owner=address)
        self.keystore.install_signing_key(signing_key)
        self.tpm = tpm
        if tpm is not None:
            tpm.seal(FEDERATION_KEY_NAME, federation_key)
        else:
            self.keystore.store_symmetric(FEDERATION_KEY_NAME, federation_key)
        self.alert_handlers: list[Callable[[Alert], None]] = []
        self.logs_submitted = 0
        self.logs_rejected = 0
        self.key_failures = 0
        self._seq = 0
        self._seen_alerts: set[tuple[str, str]] = set()
        self._pending_commit: dict[str, float] = {}
        self.commit_latencies: list[float] = []
        #: Attack injection point: rewrites a log entry before encryption
        #: (a compromised LI storing falsified logs).
        self.tamper_interceptor: Optional[Callable[[LogEntry], LogEntry]] = None
        node.chain.subscribe_events(self._on_contract_event)
        node.on_head_change(lambda _head: self._check_commits())

    # -- key access -----------------------------------------------------------

    def _federation_key(self) -> SymmetricKey:
        """Fetch K, via TPM unseal when so deployed (fails after tampering)."""
        if self.tpm is not None:
            key = self.tpm.unseal(FEDERATION_KEY_NAME)
            if not isinstance(key, SymmetricKey):  # pragma: no cover - defensive
                raise CryptoError("sealed object is not the federation key")
            return key
        return self.keystore.symmetric(FEDERATION_KEY_NAME)

    # -- log ingestion ------------------------------------------------------------

    def receive(self, message: Message) -> None:
        if message.kind != "drams_log":
            return
        entry = LogEntry.from_dict(message.payload)
        self.store_entry(entry)

    def store_entry(self, entry: LogEntry) -> Optional[str]:
        """Encrypt, commit and submit a log entry; returns the tx id."""
        tracer = self.network.telemetry
        if tracer is None:
            return self._store_entry(entry)
        # Message deliveries arrive with the sender's context active;
        # direct calls re-join the decision trace via the correlation id.
        parent = tracer.current or tracer.context_for(entry.correlation_id)
        span = tracer.begin("li.record_log", self.address, parent=parent,
                            attrs={"entry_type": entry.entry_type})
        with tracer.activate(span.context):
            tx_id = self._store_entry(entry)
        tracer.end(span, "ok" if tx_id is not None else "rejected")
        return tx_id

    def _store_entry(self, entry: LogEntry) -> Optional[str]:
        if self.tamper_interceptor is not None:
            entry = self.tamper_interceptor(entry)
        try:
            key = self._federation_key()
        except CryptoError:
            # TPM refused to unseal: the platform measurement changed.
            self.key_failures += 1
            return None
        # One canonical encoding serves encryption and the hash commitment;
        # the synthetic nonce keeps runs reproducible under a fixed seed.
        payload_bytes = entry.canonical_payload()
        ciphertext = key.encrypt(payload_bytes,
                                 nonce=key.derive_nonce(payload_bytes))
        self._seq += 1
        args = {
            "correlation_id": entry.correlation_id,
            "entry_type": entry.entry_type,
            "payload_hash": entry.payload_hash(),
            "tenant": entry.tenant,
            "component": entry.component,
            "ciphertext": ciphertext.to_dict(),
            "observed_at": entry.observed_at,
        }
        # Decision entries carry a policy provenance stamp; surface it in
        # the transaction so the contract can classify a conflicting
        # report as policy churn (skewed PRP replicas) vs equivocation
        # without decrypting anything.
        fingerprint = entry.payload.get("policy_fingerprint", "")
        if fingerprint:
            args["policy_fingerprint"] = fingerprint
            args["policy_version"] = entry.payload.get("policy_version", 0)
        tx = Transaction(
            sender=self.address,
            contract=CONTRACT_NAME,
            method="record_log",
            args=args,
            seq=self._seq,
        ).sign(self.keystore.signing_key)
        if not self.node.submit_transaction(tx):
            self.logs_rejected += 1
            return None
        self.logs_submitted += 1
        self._pending_commit[tx.tx_id] = self.sim.now
        tracer = self.network.telemetry
        if tracer is not None:
            # Open until this LI observes the transaction final — the
            # "chain wait" hop of the decision's critical path.
            tracer.open_span(("chain.commit", self.address, tx.tx_id),
                             "chain.commit", self.address, category="chain")
        return tx.tx_id

    def submit_tick(self) -> Optional[str]:
        """Submit a timeout-sweep transaction to the monitor contract."""
        self._seq += 1
        tx = Transaction(
            sender=self.address,
            contract=CONTRACT_NAME,
            method="tick",
            args={},
            seq=self._seq,
        ).sign(self.keystore.signing_key)
        if not self.node.submit_transaction(tx):
            return None
        return tx.tx_id

    # -- commit latency tracking ---------------------------------------------------

    def _check_commits(self) -> None:
        """On each new head, settle pending submissions that became final."""
        done = [tx_id for tx_id in self._pending_commit
                if self.node.chain.is_final(tx_id)]
        tracer = self.network.telemetry
        for tx_id in done:
            submitted = self._pending_commit.pop(tx_id)
            self.commit_latencies.append(self.sim.now - submitted)
            if tracer is not None:
                # Non-strict: the span only exists for entries stored
                # while tracing was attached.
                tracer.close_span(("chain.commit", self.address, tx_id),
                                  "final", strict=False)

    # -- alert delivery --------------------------------------------------------------

    def on_alert(self, handler: Callable[[Alert], None]) -> None:
        self.alert_handlers.append(handler)

    def _on_contract_event(self, event: ContractEvent, block_hash: str) -> None:
        if event.contract != CONTRACT_NAME or event.name != EVENT_ALERT:
            return
        payload = event.payload
        key = (payload["alert_type"], payload["correlation_id"])
        if key in self._seen_alerts:
            return
        self._seen_alerts.add(key)
        tracer = self.network.telemetry
        if tracer is not None:
            tracer.instant(
                "alert", self.address,
                context=tracer.context_for(payload["correlation_id"]),
                category="alert",
                attrs={"alert_type": payload["alert_type"]})
        alert = Alert(
            alert_type=AlertType(payload["alert_type"]),
            correlation_id=payload["correlation_id"],
            details=dict(payload.get("details", {})),
            block_height=event.block_height,
            raised_at=self.sim.now,
        )
        for handler in self.alert_handlers:
            handler(alert)

    # -- audit reads -----------------------------------------------------------------

    def read_log_plaintext(self, correlation_id: str, entry_type: str) -> Optional[dict]:
        """Decrypt a stored log payload from the replicated contract state.

        Used by auditors (and the Analyser); returns None when the entry is
        absent.  Raises :class:`CryptoError` if the ciphertext was tampered
        with (MAC failure).
        """
        records = self.node.chain.state_of(CONTRACT_NAME)["records"]
        record = records.get(correlation_id)
        if record is None:
            return None
        entry = record["entries"].get(entry_type)
        if entry is None or "ciphertext" not in entry:
            return None
        blob = EncryptedBlob.from_dict(entry["ciphertext"])
        plaintext = self._federation_key().decrypt(blob)
        return from_json(plaintext.decode("utf-8"))
