"""Link latency models.

A cloud federation spans tenants in different clouds: intra-tenant traffic
is LAN-like (sub-millisecond), cross-tenant traffic is WAN-like (tens of
milliseconds, heavy-tailed).  Latency models are pluggable so experiments
can sweep network conditions; all sampling is driven by the experiment's
seeded RNG stream.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.common.rng import SeededRng


class LatencyModel(ABC):
    """Samples one-way message delays, in seconds."""

    @abstractmethod
    def sample(self, rng: SeededRng, size_bytes: int = 0) -> float:
        """Return a delay for a message of ``size_bytes`` payload bytes."""

    def describe(self) -> str:
        return type(self).__name__


class ConstantLatency(LatencyModel):
    """Fixed propagation delay plus linear serialization cost.

    ``bandwidth_bps`` models the size-dependent component the paper's "log
    size" discussion hinges on: bigger logs take longer on the wire and in
    block bodies.
    """

    def __init__(self, delay: float, bandwidth_bps: float = 0.0) -> None:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.delay = delay
        self.bandwidth_bps = bandwidth_bps

    def sample(self, rng: SeededRng, size_bytes: int = 0) -> float:
        transfer = (size_bytes * 8 / self.bandwidth_bps) if self.bandwidth_bps > 0 else 0.0
        return self.delay + transfer

    def describe(self) -> str:
        return f"const({self.delay * 1000:.2f}ms)"


class UniformLatency(LatencyModel):
    """Uniform delay in ``[low, high]`` plus optional bandwidth term."""

    def __init__(self, low: float, high: float, bandwidth_bps: float = 0.0) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got {low}, {high}")
        self.low = low
        self.high = high
        self.bandwidth_bps = bandwidth_bps

    def sample(self, rng: SeededRng, size_bytes: int = 0) -> float:
        transfer = (size_bytes * 8 / self.bandwidth_bps) if self.bandwidth_bps > 0 else 0.0
        return rng.uniform(self.low, self.high) + transfer

    def describe(self) -> str:
        return f"uniform({self.low * 1000:.2f}..{self.high * 1000:.2f}ms)"


class LognormalLatency(LatencyModel):
    """Heavy-tailed delay typical of WAN paths between federated clouds.

    Parameterised by the *median* delay and a shape sigma; the underlying
    normal is ``N(ln(median), sigma)``.
    """

    def __init__(self, median: float, sigma: float = 0.3, bandwidth_bps: float = 0.0) -> None:
        if median <= 0:
            raise ValueError(f"median must be positive, got {median}")
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.median = median
        self.sigma = sigma
        self.bandwidth_bps = bandwidth_bps

    def sample(self, rng: SeededRng, size_bytes: int = 0) -> float:
        transfer = (size_bytes * 8 / self.bandwidth_bps) if self.bandwidth_bps > 0 else 0.0
        return math.exp(rng.gauss(math.log(self.median), self.sigma)) + transfer

    def describe(self) -> str:
        return f"lognormal(median={self.median * 1000:.2f}ms, sigma={self.sigma})"


def LanProfile(bandwidth_bps: float = 1e9) -> LatencyModel:
    """Intra-tenant link: ~0.3 ms median, gigabit bandwidth."""
    return LognormalLatency(median=0.0003, sigma=0.2, bandwidth_bps=bandwidth_bps)


def WanProfile(median: float = 0.025, bandwidth_bps: float = 1e8) -> LatencyModel:
    """Cross-tenant (cross-cloud) link: ~25 ms median, heavy tail."""
    return LognormalLatency(median=median, sigma=0.35, bandwidth_bps=bandwidth_bps)
