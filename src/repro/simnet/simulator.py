"""Event-queue kernel.

A minimal but complete discrete-event simulator: events are ``(time, seq,
callback)`` triples in a heap; ``seq`` breaks ties FIFO so runs are fully
deterministic.  Components never sleep or poll — they schedule follow-up
events — which makes thousand-node experiments cheap and reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback; ordering is (time, seq) so ties are FIFO."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.cancelled = True


class Simulator:
    """Deterministic discrete-event scheduler.

    Time is a float in seconds.  ``run()`` drains the queue (optionally up
    to a horizon); ``step()`` executes exactly one event, which the tests
    use to interleave assertions with progress.
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._executed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of events executed so far (diagnostics/metrics)."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return sum(1 for event in self._queue if not event.cancelled)

    def schedule(self, delay: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        event = Event(time=self._now + delay, seq=next(self._seq), callback=callback, label=label)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        return self.schedule(max(0.0, time - self._now), callback, label)

    def step(self) -> bool:
        """Execute the next non-cancelled event.  Returns False when idle."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._executed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        ``until`` bounds simulated time (events beyond it stay queued);
        ``max_events`` bounds work, guarding against runaway feedback loops.
        Returns the number of events executed by this call.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                self._now = until
                break
            if not self.step():
                break
            executed += 1
        if until is not None and not self._queue and self._now < until:
            self._now = until
        return executed

    def run_until(self, predicate: Callable[[], bool], *, max_events: int = 1_000_000) -> bool:
        """Run until ``predicate()`` is true.  Returns whether it became true."""
        if predicate():
            return True
        for _ in range(max_events):
            if not self.step():
                return predicate()
            if predicate():
                return True
        return False

    def every(self, interval: float, callback: Callable[[], None], label: str = "",
              jitter: Callable[[], float] | None = None) -> Callable[[], None]:
        """Install a periodic callback; returns a function that stops it."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        state: dict[str, Any] = {"stopped": False, "event": None}

        def fire() -> None:
            if state["stopped"]:
                return
            callback()
            delay = interval + (jitter() if jitter else 0.0)
            state["event"] = self.schedule(max(1e-9, delay), fire, label)

        state["event"] = self.schedule(interval + (jitter() if jitter else 0.0), fire, label)

        def stop() -> None:
            state["stopped"] = True
            if state["event"] is not None:
                state["event"].cancel()

        return stop
