"""Discrete-event simulation substrate.

The paper evaluates DRAMS on a FaaS cloud testbed; we substitute a
deterministic discrete-event simulator.  All distributed components (PEPs,
the PDP, logging interfaces, blockchain nodes, the analyser) are
:class:`Host` objects attached to a :class:`Network`; message delivery is an
event scheduled after a latency sampled from the link's
:class:`LatencyModel`.  The same code paths run whether the experiment is a
micro test or a thousand-request benchmark, and every run is reproducible
from ``(seed, topology, workload)``.
"""

from repro.simnet.simulator import Simulator, Event
from repro.simnet.latency import (
    LatencyModel,
    ConstantLatency,
    UniformLatency,
    LognormalLatency,
    WanProfile,
    LanProfile,
)
from repro.simnet.network import Network, Host, Message, NetworkStats

__all__ = [
    "Simulator",
    "Event",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LognormalLatency",
    "WanProfile",
    "LanProfile",
    "Network",
    "Host",
    "Message",
    "NetworkStats",
]
