"""Simulated message network.

Hosts register with the network under a unique address; sending a message
schedules a delivery event after the link's sampled latency.  The network
supports per-pair latency overrides, partitions and probabilistic drops,
which the threat experiments use to model degraded federations.

Messages are delivered by invoking ``host.receive(message)``; components
subclass :class:`Host` (or compose one) and dispatch on ``message.kind``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.common.errors import NetworkError
from repro.common.fastpath import FLAGS
from repro.common.ids import new_id
from repro.common.rng import SeededRng
from repro.common.serialization import canonical_bytes
from repro.simnet.latency import ConstantLatency, LatencyModel
from repro.simnet.simulator import Simulator


@dataclass
class Message:
    """An addressed datagram.  ``payload`` must be canonically serializable."""

    src: str
    dst: str
    kind: str
    payload: Any
    msg_id: str = field(default_factory=lambda: new_id("msg"))
    sent_at: float = 0.0

    def size_bytes(self) -> int:
        """Wire size estimate — canonical encoding length plus header.

        Fast path: the network sizes each message twice (wire stats and
        latency sampling), and gossip fans the same payload out to every
        peer, so the encoding is memoised per message; payloads are
        treated as frozen once handed to :meth:`Network.send`.
        """
        if not FLAGS.encoding_cache:
            return len(canonical_bytes(self.payload)) + 64
        size = getattr(self, "_size_cache", None)
        if size is None:
            size = len(canonical_bytes(self.payload)) + 64
            self._size_cache = size
        return size


@dataclass
class NetworkStats:
    """Counters the benchmarks report alongside latency numbers."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    bytes_sent: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "bytes_sent": self.bytes_sent,
        }


class Host:
    """A network endpoint.  Subclasses override :meth:`receive`."""

    def __init__(self, network: "Network", address: str) -> None:
        self.network = network
        self.address = address
        network.attach(self)

    @property
    def sim(self) -> Simulator:
        return self.network.sim

    def send(self, dst: str, kind: str, payload: Any) -> Optional[Message]:
        """Send a message; returns it, or None if it was dropped/partitioned."""
        return self.network.send(self.address, dst, kind, payload)

    def receive(self, message: Message) -> None:  # pragma: no cover - interface
        raise NotImplementedError(f"{type(self).__name__} must implement receive()")


class Network:
    """The federation's message fabric.

    ``default_latency`` applies unless a per-pair or per-host-prefix
    override is installed with :meth:`set_latency`.  Partitions are
    symmetric and dynamic: experiments heal or create them mid-run.
    """

    def __init__(self, sim: Simulator, rng: SeededRng,
                 default_latency: LatencyModel | None = None) -> None:
        self.sim = sim
        self.rng = rng.fork("network")
        self.default_latency = default_latency or ConstantLatency(0.001)
        self.stats = NetworkStats()
        self._hosts: dict[str, Host] = {}
        self._latency_overrides: dict[tuple[str, str], LatencyModel] = {}
        self._partitions: set[frozenset[str]] = set()
        self._drop_rate = 0.0
        self._taps: list[Callable[[Message], None]] = []

    # -- topology management ---------------------------------------------------

    def attach(self, host: Host) -> None:
        if host.address in self._hosts:
            raise NetworkError(f"address already in use: {host.address}")
        self._hosts[host.address] = host

    def detach(self, address: str) -> None:
        self._hosts.pop(address, None)

    def hosts(self) -> list[str]:
        return sorted(self._hosts)

    def set_latency(self, src: str, dst: str, model: LatencyModel,
                    symmetric: bool = True) -> None:
        """Override latency for the (src, dst) pair (and reverse if symmetric)."""
        self._latency_overrides[(src, dst)] = model
        if symmetric:
            self._latency_overrides[(dst, src)] = model

    def set_drop_rate(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"drop rate must be in [0,1], got {rate}")
        self._drop_rate = rate

    def partition(self, group_a: list[str], group_b: list[str]) -> None:
        """Block all traffic between the two host groups."""
        for a in group_a:
            for b in group_b:
                self._partitions.add(frozenset((a, b)))

    def heal(self) -> None:
        """Remove all partitions."""
        self._partitions.clear()

    def is_partitioned(self, a: str, b: str) -> bool:
        return frozenset((a, b)) in self._partitions

    def add_tap(self, tap: Callable[[Message], None]) -> None:
        """Install a wiretap invoked for every sent message (probes use this)."""
        self._taps.append(tap)

    # -- message transfer --------------------------------------------------------

    def _latency_for(self, src: str, dst: str) -> LatencyModel:
        return self._latency_overrides.get((src, dst), self.default_latency)

    def send(self, src: str, dst: str, kind: str, payload: Any) -> Optional[Message]:
        if src not in self._hosts:
            raise NetworkError(f"unknown source host: {src}")
        message = Message(src=src, dst=dst, kind=kind, payload=payload,
                          sent_at=self.sim.now)
        self.stats.sent += 1
        self.stats.bytes_sent += message.size_bytes()
        for tap in self._taps:
            tap(message)
        if dst not in self._hosts:
            self.stats.dropped += 1
            return None
        if self.is_partitioned(src, dst):
            self.stats.dropped += 1
            return None
        if self._drop_rate > 0 and self.rng.random() < self._drop_rate:
            self.stats.dropped += 1
            return None
        delay = self._latency_for(src, dst).sample(self.rng, message.size_bytes())

        def deliver() -> None:
            host = self._hosts.get(dst)
            if host is None or self.is_partitioned(src, dst):
                self.stats.dropped += 1
                return
            self.stats.delivered += 1
            host.receive(message)

        self.sim.schedule(delay, deliver, label=f"deliver:{kind}:{src}->{dst}")
        return message

    def broadcast(self, src: str, kind: str, payload: Any,
                  exclude: set[str] | None = None) -> int:
        """Send to every attached host except ``src`` and ``exclude``; returns count."""
        skip = {src} | (exclude or set())
        count = 0
        for address in sorted(self._hosts):
            if address in skip:
                continue
            self.send(src, address, kind, payload)
            count += 1
        return count
