"""Simulated message network.

Hosts register with the network under a unique address; sending a message
schedules a delivery event after the link's sampled latency.  The network
supports per-pair latency overrides, symmetric and asymmetric partitions,
per-link fault profiles (loss, duplication, reordering jitter, added
latency) and probabilistic drops, which the threat experiments and the
fault-injection plane (:mod:`repro.faults`) use to model degraded
federations.

Messages are delivered by invoking ``host.receive(message)``; components
subclass :class:`Host` (or compose one) and dispatch on ``message.kind``.

Crash safety: every ``attach`` bumps an *incarnation* counter for the
address, and a delivery only lands if the destination still runs the
incarnation that was current at send time.  A message in flight toward a
host that crashes — or crashes and restarts — before the delivery event
fires is dropped (counted in ``NetworkStats.dropped_dead``) instead of
being handed to a dead host or to a restarted incarnation with stale
state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.common.errors import NetworkError
from repro.common.fastpath import FLAGS
from repro.common.ids import new_id
from repro.common.rng import SeededRng
from repro.common.serialization import canonical_bytes
from repro.simnet.latency import ConstantLatency, LatencyModel
from repro.simnet.simulator import Simulator


@dataclass
class Message:
    """An addressed datagram.  ``payload`` must be canonically serializable."""

    src: str
    dst: str
    kind: str
    payload: Any
    msg_id: str = field(default_factory=lambda: new_id("msg"))
    sent_at: float = 0.0
    #: Sideband trace context (:class:`repro.telemetry.tracing.TraceContext`).
    #: Never part of the payload: excluded from equality and from
    #: :meth:`size_bytes`, so tracing changes no wire stat or sampled latency.
    trace: Any = field(default=None, repr=False, compare=False)

    def size_bytes(self) -> int:
        """Wire size estimate — canonical encoding length plus header.

        Fast path: the network sizes each message twice (wire stats and
        latency sampling), and gossip fans the same payload out to every
        peer, so the encoding is memoised per message; payloads are
        treated as frozen once handed to :meth:`Network.send`.
        """
        if not FLAGS.encoding_cache:
            return len(canonical_bytes(self.payload)) + 64
        size = getattr(self, "_size_cache", None)
        if size is None:
            size = len(canonical_bytes(self.payload)) + 64
            self._size_cache = size
        return size


@dataclass
class NetworkStats:
    """Counters the benchmarks report alongside latency numbers."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    #: Subset of ``dropped``: deliveries abandoned because the destination
    #: crashed (or crashed and restarted) after the message was sent.
    dropped_dead: int = 0
    #: Extra deliveries injected by per-link duplication faults.
    duplicated: int = 0
    bytes_sent: int = 0
    #: Sends by message kind — the per-protocol traffic breakdown the
    #: harness run summaries surface.
    by_kind: dict = field(default_factory=dict)

    def snapshot(self) -> dict:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "dropped_dead": self.dropped_dead,
            "duplicated": self.duplicated,
            "bytes_sent": self.bytes_sent,
            "by_kind": dict(sorted(self.by_kind.items())),
        }


@dataclass
class LinkFault:
    """Adversarial delivery profile for one directed link.

    ``loss`` drops the message outright; ``duplicate`` schedules a second
    independent delivery of the same message (at-least-once semantics);
    ``reorder_jitter`` adds a uniform random delay in ``[0, jitter]`` so
    back-to-back messages can overtake each other; ``extra_latency`` is a
    deterministic spike added to every traversal.  Counters feed the
    fault-plane's recovery reports.
    """

    loss: float = 0.0
    duplicate: float = 0.0
    reorder_jitter: float = 0.0
    extra_latency: float = 0.0
    dropped: int = 0
    duplicated: int = 0

    def validate(self) -> None:
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError(f"link loss must be in [0,1], got {self.loss}")
        if not 0.0 <= self.duplicate <= 1.0:
            raise ValueError(f"link duplicate must be in [0,1], got {self.duplicate}")
        if self.reorder_jitter < 0 or self.extra_latency < 0:
            raise ValueError("link delays must be >= 0")


class Host:
    """A network endpoint.  Subclasses override :meth:`receive`."""

    def __init__(self, network: "Network", address: str) -> None:
        self.network = network
        self.address = address
        #: Local clock error in seconds; the fault plane's ``clock_skew``
        #: events set this.  Only *observations* (probe timestamps) read
        #: the skewed clock — the simulator itself stays monotonic.
        self.clock_offset = 0.0
        network.attach(self)

    @property
    def sim(self) -> Simulator:
        return self.network.sim

    @property
    def local_now(self) -> float:
        """This host's possibly-skewed view of the current time."""
        return self.sim.now + self.clock_offset

    def send(self, dst: str, kind: str, payload: Any,
             msg_id: Optional[str] = None) -> Optional[Message]:
        """Send a message; returns it, or None if it was dropped/partitioned.

        ``msg_id`` overrides the minted message id.  Sideband components
        (light clients and the services answering them) supply their own
        namespaced ids so their traffic does not advance the global id
        counter — minted ids feed transaction identity, so differential
        experiments require the primary stack's id sequence to be
        byte-identical with and without observers attached.
        """
        return self.network.send(self.address, dst, kind, payload, msg_id=msg_id)

    def receive(self, message: Message) -> None:  # pragma: no cover - interface
        raise NotImplementedError(f"{type(self).__name__} must implement receive()")


class Network:
    """The federation's message fabric.

    ``default_latency`` applies unless a per-pair or per-host-prefix
    override is installed with :meth:`set_latency`.  Partitions are
    symmetric and dynamic: experiments heal or create them mid-run.
    """

    def __init__(self, sim: Simulator, rng: SeededRng,
                 default_latency: LatencyModel | None = None) -> None:
        self.sim = sim
        self.rng = rng.fork("network")
        self.default_latency = default_latency or ConstantLatency(0.001)
        self.stats = NetworkStats()
        self._hosts: dict[str, Host] = {}
        self._latency_overrides: dict[tuple[str, str], LatencyModel] = {}
        self._partitions: set[frozenset[str]] = set()
        #: Directed blocks: (src, dst) pairs where only src->dst is severed.
        self._directed_blocks: set[tuple[str, str]] = set()
        self._link_faults: dict[tuple[str, str], LinkFault] = {}
        self._drop_rate = 0.0
        self._taps: list[Callable[[Message], None]] = []
        #: Optional :class:`repro.telemetry.tracing.Tracer`.  When set,
        #: sends stamp the active trace context onto the message and
        #: deliveries re-activate it around ``host.receive`` — the whole
        #: cross-hop propagation protocol.  Pure observation: no payload,
        #: stat or RNG effect.
        self.telemetry = None
        #: Per-address attach generation; deliveries are bound to the
        #: incarnation current at send time (see module docstring).
        self._incarnations: dict[str, int] = {}

    # -- topology management ---------------------------------------------------

    def attach(self, host: Host) -> None:
        if host.address in self._hosts:
            raise NetworkError(f"address already in use: {host.address}")
        self._hosts[host.address] = host
        self._incarnations[host.address] = self._incarnations.get(host.address, 0) + 1

    def detach(self, address: str) -> None:
        self._hosts.pop(address, None)

    def hosts(self) -> list[str]:
        return sorted(self._hosts)

    def host(self, address: str) -> Optional[Host]:
        """The attached host at ``address``, or None (crashed/never attached)."""
        return self._hosts.get(address)

    def is_attached(self, address: str) -> bool:
        return address in self._hosts

    def set_latency(self, src: str, dst: str, model: LatencyModel,
                    symmetric: bool = True) -> None:
        """Override latency for the (src, dst) pair (and reverse if symmetric)."""
        self._latency_overrides[(src, dst)] = model
        if symmetric:
            self._latency_overrides[(dst, src)] = model

    def set_drop_rate(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"drop rate must be in [0,1], got {rate}")
        self._drop_rate = rate

    def partition(self, group_a: list[str], group_b: list[str],
                  symmetric: bool = True) -> None:
        """Block traffic between the two host groups.

        Symmetric partitions (the default) sever both directions;
        ``symmetric=False`` blocks only group_a -> group_b, modelling the
        asymmetric failures (one-way firewall rules, half-open links) the
        fault plane scripts.
        """
        for a in group_a:
            for b in group_b:
                if symmetric:
                    self._partitions.add(frozenset((a, b)))
                else:
                    self._directed_blocks.add((a, b))

    def heal(self) -> None:
        """Remove all partitions (symmetric and directed)."""
        self._partitions.clear()
        self._directed_blocks.clear()

    def heal_partition(self, group_a: list[str], group_b: list[str]) -> None:
        """Remove the partitions between exactly these two groups."""
        for a in group_a:
            for b in group_b:
                self._partitions.discard(frozenset((a, b)))
                self._directed_blocks.discard((a, b))
                self._directed_blocks.discard((b, a))

    def is_partitioned(self, a: str, b: str) -> bool:
        """True if a message from ``a`` to ``b`` would be severed."""
        return frozenset((a, b)) in self._partitions or (a, b) in self._directed_blocks

    # -- per-link fault profiles ------------------------------------------------

    def set_link_fault(self, src: str, dst: str, *, loss: float = 0.0,
                       duplicate: float = 0.0, reorder_jitter: float = 0.0,
                       extra_latency: float = 0.0,
                       symmetric: bool = False) -> LinkFault:
        """Install an adversarial delivery profile on the src->dst link.

        Returns the (forward-direction) :class:`LinkFault` so callers can
        read its drop/duplicate counters afterwards.
        """
        fault = LinkFault(loss=loss, duplicate=duplicate,
                          reorder_jitter=reorder_jitter,
                          extra_latency=extra_latency)
        fault.validate()
        self._link_faults[(src, dst)] = fault
        if symmetric:
            reverse = LinkFault(loss=loss, duplicate=duplicate,
                                reorder_jitter=reorder_jitter,
                                extra_latency=extra_latency)
            self._link_faults[(dst, src)] = reverse
        return fault

    def clear_link_fault(self, src: str, dst: str, symmetric: bool = False) -> None:
        self._link_faults.pop((src, dst), None)
        if symmetric:
            self._link_faults.pop((dst, src), None)

    def link_fault(self, src: str, dst: str) -> Optional[LinkFault]:
        return self._link_faults.get((src, dst))

    def add_tap(self, tap: Callable[[Message], None]) -> None:
        """Install a wiretap invoked for every sent message (probes use this)."""
        self._taps.append(tap)

    # -- message transfer --------------------------------------------------------

    def _latency_for(self, src: str, dst: str) -> LatencyModel:
        return self._latency_overrides.get((src, dst), self.default_latency)

    def send(self, src: str, dst: str, kind: str, payload: Any,
             msg_id: Optional[str] = None) -> Optional[Message]:
        if src not in self._hosts:
            raise NetworkError(f"unknown source host: {src}")
        if msg_id is None:
            message = Message(src=src, dst=dst, kind=kind, payload=payload,
                              sent_at=self.sim.now)
        else:
            message = Message(src=src, dst=dst, kind=kind, payload=payload,
                              msg_id=msg_id, sent_at=self.sim.now)
        self.stats.sent += 1
        self.stats.by_kind[kind] = self.stats.by_kind.get(kind, 0) + 1
        self.stats.bytes_sent += message.size_bytes()
        if self.telemetry is not None:
            message.trace = self.telemetry.current
        for tap in self._taps:
            tap(message)
        if dst not in self._hosts:
            self.stats.dropped += 1
            return None
        if self.is_partitioned(src, dst):
            self.stats.dropped += 1
            return None
        if self._drop_rate > 0 and self.rng.random() < self._drop_rate:
            self.stats.dropped += 1
            return None
        fault = self._link_faults.get((src, dst))
        if fault is not None and fault.loss > 0 and self.rng.random() < fault.loss:
            fault.dropped += 1
            self.stats.dropped += 1
            return None
        delay = self._transit_delay(src, dst, message, fault)
        # Bind the delivery to the destination's current incarnation: a
        # crash (detach) or crash+restart (re-attach) between now and the
        # delivery time invalidates every message already in flight.
        born = self._incarnations.get(dst, 0)

        def deliver() -> None:
            host = self._hosts.get(dst)
            if host is None or self._incarnations.get(dst, 0) != born:
                self.stats.dropped += 1
                self.stats.dropped_dead += 1
                if self.telemetry is not None and message.trace is not None:
                    # The trace sees the loss even though no host does.
                    self.telemetry.instant(
                        "net.dropped_dead", dst, context=message.trace,
                        attrs={"kind": message.kind})
                return
            if self.is_partitioned(src, dst):
                self.stats.dropped += 1
                return
            self.stats.delivered += 1
            if self.telemetry is not None and message.trace is not None:
                with self.telemetry.activate(message.trace):
                    host.receive(message)
            else:
                host.receive(message)

        self.sim.schedule(delay, deliver, label=f"deliver:{kind}:{src}->{dst}")
        if fault is not None and fault.duplicate > 0 and \
                self.rng.random() < fault.duplicate:
            # At-least-once delivery: a second, independently-delayed copy
            # of the same message (same msg_id — receivers must be
            # idempotent, which the adversarial-delivery tests pin).
            fault.duplicated += 1
            self.stats.duplicated += 1
            dup_delay = self._transit_delay(src, dst, message, fault)
            self.sim.schedule(dup_delay, deliver,
                              label=f"deliver-dup:{kind}:{src}->{dst}")
        return message

    def _transit_delay(self, src: str, dst: str, message: Message,
                       fault: Optional[LinkFault]) -> float:
        delay = self._latency_for(src, dst).sample(self.rng, message.size_bytes())
        if fault is not None:
            delay += fault.extra_latency
            if fault.reorder_jitter > 0:
                delay += self.rng.uniform(0.0, fault.reorder_jitter)
        return delay

    def broadcast(self, src: str, kind: str, payload: Any,
                  exclude: set[str] | None = None) -> int:
        """Send to every attached host except ``src`` and ``exclude``; returns count."""
        skip = {src} | (exclude or set())
        count = 0
        for address in sorted(self._hosts):
            if address in skip:
                continue
            self.send(src, address, kind, payload)
            count += 1
        return count
