"""Per-decision critical paths from a trace forest.

Given the closed spans of a run, attribute every elementary interval of
each trace's lifetime to exactly one hop: at any instant the *deepest*
active span wins (ties broken by later start, then tracer sequence), so
``pdp.evaluate`` time is charged to the evaluator, not double-counted
under the enclosing ``pep.dispatch`` attempt; intervals covered by no
span (the gap between enforcement and the audit events, block waits
between mempool admission and inclusion) are charged to ``wait``.

A *decision trace* is one rooted in a ``pep.request`` span.  Its extent
runs from the root's start to the last span's end — the full monitored
life of the decision, through chain commit and Analyser verification —
which is why "p99 decision = 62 % chain wait" falls out of the sweep
naturally rather than from any hop-specific accounting.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.metrics.recorder import percentile
from repro.telemetry.tracing import Span

ROOT_SPAN = "pep.request"
WAIT = "wait"


class CriticalPathAnalyser:
    """Boundary-sweep time attribution over closed spans, per trace."""

    def __init__(self, spans: Iterable[Span]) -> None:
        self._traces: dict[str, list[Span]] = {}
        for span in spans:
            if not span.closed:
                continue
            self._traces.setdefault(span.trace_id, []).append(span)

    def trace_ids(self) -> list[str]:
        return sorted(self._traces)

    def spans_of(self, trace_id: str) -> list[Span]:
        return list(self._traces.get(trace_id, []))

    def decision_traces(self) -> list[str]:
        """Trace ids rooted in a ``pep.request`` span, sorted by extent."""
        decisions = [
            trace_id for trace_id, spans in self._traces.items()
            if any(span.name == ROOT_SPAN for span in spans)
        ]
        return sorted(decisions,
                      key=lambda t: (self.extent(t)[1] - self.extent(t)[0], t))

    def extent(self, trace_id: str) -> tuple[float, float]:
        spans = self._traces[trace_id]
        return (min(span.start for span in spans),
                max(span.end for span in spans))

    def _depths(self, spans: list[Span]) -> dict[str, int]:
        by_id = {span.span_id: span for span in spans}
        depths: dict[str, int] = {}

        def depth_of(span_id: str) -> int:
            cached = depths.get(span_id)
            if cached is not None:
                return cached
            span = by_id[span_id]
            if span.parent_id is None or span.parent_id not in by_id:
                value = 0
            else:
                value = depth_of(span.parent_id) + 1
            depths[span_id] = value
            return value

        for span in spans:
            depth_of(span.span_id)
        return depths

    def attribution(self, trace_id: str) -> dict[str, float]:
        """Seconds of the trace's extent charged to each hop name.

        Boundary sweep: every span start/end is a boundary; each
        elementary interval goes to the deepest span covering it, or to
        ``wait`` when none does.  The values sum to the trace extent.
        """
        spans = self._traces[trace_id]
        depths = self._depths(spans)
        boundaries = sorted({span.start for span in spans}
                            | {span.end for span in spans})
        shares: dict[str, float] = {}
        for low, high in zip(boundaries, boundaries[1:]):
            if high <= low:
                continue
            active = [span for span in spans
                      if span.start <= low and span.end >= high]
            if not active:
                shares[WAIT] = shares.get(WAIT, 0.0) + (high - low)
                continue
            winner = max(active, key=lambda span: (
                depths[span.span_id], span.start, span.seq))
            shares[winner.name] = shares.get(winner.name, 0.0) + (high - low)
        return shares

    def percentile_trace(self, fraction: float) -> Optional[str]:
        """The decision trace at the given extent-duration percentile."""
        decisions = self.decision_traces()
        if not decisions:
            return None
        durations = [self.extent(t)[1] - self.extent(t)[0] for t in decisions]
        target = percentile(durations, fraction)
        # decision_traces() is extent-sorted: pick the first at/after target.
        for trace_id, duration in zip(decisions, durations):
            if duration >= target:
                return trace_id
        return decisions[-1]

    def attribution_table(self, fractions: tuple = (0.5, 0.99)) -> list[dict]:
        """One row per requested percentile: total plus per-hop share.

        Hops are reported as ``<name>_s`` (seconds) and ``<name>_pct``
        columns; the benchmark prints this through ``format_table`` and
        persists it in ``BENCH_e17.json``.
        """
        rows: list[dict] = []
        for fraction in fractions:
            trace_id = self.percentile_trace(fraction)
            if trace_id is None:
                continue
            start, end = self.extent(trace_id)
            total = end - start
            shares = self.attribution(trace_id)
            row: dict = {
                "percentile": f"p{int(round(fraction * 100))}",
                "trace": trace_id,
                "total_s": round(total, 6),
            }
            for hop, seconds in sorted(shares.items(),
                                       key=lambda item: -item[1]):
                row[f"{hop}_s"] = round(seconds, 6)
                row[f"{hop}_pct"] = (round(100.0 * seconds / total, 1)
                                     if total > 0 else 0.0)
            rows.append(row)
        return rows

    def mean_attribution(self) -> dict[str, float]:
        """Average per-hop *fraction* across all decision traces."""
        decisions = self.decision_traces()
        if not decisions:
            return {}
        totals: dict[str, float] = {}
        for trace_id in decisions:
            start, end = self.extent(trace_id)
            span_total = end - start
            if span_total <= 0:
                continue
            for hop, seconds in self.attribution(trace_id).items():
                totals[hop] = totals.get(hop, 0.0) + seconds / span_total
        return {hop: value / len(decisions)
                for hop, value in sorted(totals.items())}


__all__ = ["CriticalPathAnalyser", "ROOT_SPAN", "WAIT"]
