"""Telemetry plane: causal tracing, unified metrics, critical paths.

See :mod:`repro.telemetry.tracing` for the propagation protocol and the
determinism contract, :mod:`repro.telemetry.metrics` for the registry
that aggregates every subsystem ``stats()`` surface, and
:mod:`repro.telemetry.critical_path` for per-decision time attribution.
``docs/observability.md`` is the narrative chapter.
"""

from repro.telemetry.critical_path import CriticalPathAnalyser
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.stack import StackTelemetry
from repro.telemetry.tracing import (
    SPAN_FORMAT,
    Span,
    SpanRecorder,
    TraceContext,
    Tracer,
    chrome_trace,
    spans_to_json,
    validate_chrome_trace,
)

__all__ = [
    "SPAN_FORMAT",
    "TraceContext",
    "Span",
    "SpanRecorder",
    "Tracer",
    "spans_to_json",
    "chrome_trace",
    "validate_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "CriticalPathAnalyser",
    "StackTelemetry",
]
