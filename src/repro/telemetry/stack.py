"""Stack-wide telemetry: one tracer + one registry per federation.

``MonitoredFederation.build(telemetry=True)`` constructs a
:class:`StackTelemetry` against the finished stack.  Attachment is two
assignments — ``network.telemetry`` and ``plane.telemetry`` both point at
the shared :class:`~repro.telemetry.tracing.Tracer` — plus a set of
pull-based registry collectors wrapping the ``stats()`` surfaces every
subsystem already keeps.  Nothing about the stack's behaviour changes:
instrumented components check for a tracer and record spans in-process,
so a bare stack and a telemetry-attached one stay bit-identical (the E17
differential arm pins decisions, alerts and the chain head).
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.critical_path import CriticalPathAnalyser
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import Tracer


class StackTelemetry:
    """Tracer + metrics registry wired to a :class:`MonitoredFederation`."""

    def __init__(self, stack, max_spans: int = 250_000) -> None:
        self.stack = stack
        self.tracer = Tracer(stack.sim, max_spans=max_spans)
        self.registry = MetricsRegistry()
        #: End-to-end access latency, stamped at enforcement time so
        #: ``snapshot(window=...)`` can summarise a load phase.
        self.access_latency = self.registry.histogram(
            "pep.access_latency", "end-to-end access latency (s)")
        self.decisions = self.registry.counter(
            "pep.decisions", "enforced outcomes by decision")
        self._outcome_cursor = 0
        self._install()

    # -- wiring ----------------------------------------------------------------

    def _install(self) -> None:
        stack = self.stack
        network = stack.federation.network
        network.telemetry = self.tracer
        stack.plane.telemetry = self.tracer
        register = self.registry.register_collector
        register("network", network.stats.snapshot)
        register("plane", lambda: {**stack.plane.describe(),
                                   **stack.plane.stats()})
        register("peps", lambda: {
            name: {
                "enforced": len(pep.enforced),
                "timeouts": pep.timeouts,
                "failovers": pep.failovers,
                "churn_reroutes": pep.churn_reroutes,
            }
            for name, pep in sorted(stack.peps.items())
        })
        policy_plane = stack.policy_plane
        register("policy_plane", lambda: {
            **(policy_plane.describe() if hasattr(policy_plane, "describe")
               else {}),
            **policy_plane.stats(),
        })
        if stack.drams is not None:
            register("drams", stack.drams.stats)
        if stack.autoscaler is not None:
            register("autoscaler", stack.autoscaler.describe)
        register("tracing", self.tracer.stats)

    # -- pushed series ---------------------------------------------------------

    def sync(self) -> int:
        """Pull new enforced outcomes into the pushed instruments.

        Outcomes accumulate on the stack as the run progresses; ``sync``
        is cursor-based so calling it repeatedly (every snapshot does)
        never double-counts.  Returns how many outcomes were absorbed.
        """
        outcomes = self.stack.outcomes
        fresh = outcomes[self._outcome_cursor:]
        self._outcome_cursor = len(outcomes)
        for outcome in fresh:
            self.access_latency.observe(
                outcome.latency, at=outcome.enforced_at,
                tenant=outcome.request.origin_tenant)
            self.decisions.inc(decision=outcome.decision.decision,
                               status=outcome.decision.status_code)
        return len(fresh)

    # -- reporting -------------------------------------------------------------

    def snapshot(self, window: Optional[tuple] = None) -> dict:
        """The unified telemetry tree: instruments + every collected surface."""
        self.sync()
        tree = self.registry.snapshot(window=window)
        tree["sim_now"] = self.stack.sim.now
        return tree

    def flush(self) -> int:
        """Close leftover spans (end of run, before export/analysis)."""
        return self.tracer.flush()

    def spans_json(self) -> dict:
        """The archival ``repro-spans/v1`` document for this run."""
        return self.tracer.recorder.to_json()

    def chrome_trace(self) -> dict:
        """Chrome ``trace_event`` JSON (load in chrome://tracing / Perfetto)."""
        return self.tracer.recorder.to_chrome()

    def critical_paths(self) -> CriticalPathAnalyser:
        """Critical-path analyser over this run's closed spans."""
        return CriticalPathAnalyser(self.tracer.recorder.spans)


__all__ = ["StackTelemetry"]
