"""The unified metrics registry.

Every subsystem already keeps its own ``stats()`` dict (plane, caches,
PRP replicas, network, chain, autoscaler, light clients).  The registry
does not replace any of them — it *aggregates*: pull-based collectors
wrap the existing surfaces, while push-based counters / gauges /
histograms cover what no component owns (end-to-end access latency).
``snapshot()`` renders everything as one nested tree.

Histograms are backed by :class:`repro.metrics.recorder.LatencyRecorder`
— the same order-statistics engine the benchmarks use — promoted here
out of bench-only duty.  Each observation may carry a sim-time stamp, so
``snapshot(window=(a, b))`` can summarise just the samples observed in a
window (windowed series for dashboards and load phases).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.common.errors import ValidationError
from repro.metrics.recorder import LatencyRecorder, SeriesSummary, percentile


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _label_name(labels: dict) -> str:
    if not labels:
        return ""
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


class Counter:
    """A monotonically increasing, labelled count."""

    kind = "counter"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValidationError(f"counter {self.name!r} cannot decrease")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def snapshot(self) -> dict:
        return {_label_name(dict(key)) or "total": value
                for key, value in sorted(self._values.items())}


class Gauge:
    """A labelled point-in-time value (set, not accumulated)."""

    kind = "gauge"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._values: dict[tuple, float] = {}

    def set(self, value: float, **labels) -> None:
        self._values[_label_key(labels)] = value

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def snapshot(self) -> dict:
        return {_label_name(dict(key)) or "value": value
                for key, value in sorted(self._values.items())}


class Histogram:
    """Labelled sample series with order-statistics summaries.

    Values land in a :class:`LatencyRecorder` series per label set; a
    parallel timestamp list (sim time, ``at=``) enables windowed
    summaries without duplicating the percentile machinery.
    """

    kind = "histogram"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._recorder = LatencyRecorder()
        self._times: dict[str, list[float]] = {}

    def _series(self, labels: dict) -> str:
        suffix = _label_name(labels)
        return f"{self.name}{{{suffix}}}" if suffix else self.name

    def observe(self, value: float, at: Optional[float] = None,
                **labels) -> None:
        series = self._series(labels)
        self._recorder.record(series, value)
        self._times.setdefault(series, []).append(
            at if at is not None else -1.0)

    def count(self, **labels) -> int:
        return self._recorder.count(self._series(labels))

    def summary(self, **labels) -> SeriesSummary:
        return self._recorder.summary(self._series(labels))

    def _windowed_series(self, series: str, since: float,
                         until: Optional[float]) -> Optional[SeriesSummary]:
        values = self._recorder.values(series)
        times = self._times.get(series, [])
        picked = sorted(
            value for value, at in zip(values, times)
            if at >= since and (until is None or at <= until))
        if not picked:
            return None
        return SeriesSummary(
            name=series,
            count=len(picked),
            mean=sum(picked) / len(picked),
            p50=percentile(picked, 0.50),
            p95=percentile(picked, 0.95),
            p99=percentile(picked, 0.99),
            maximum=picked[-1],
        )

    def windowed(self, since: float, until: Optional[float] = None,
                 **labels) -> Optional[SeriesSummary]:
        """Summary over samples stamped inside ``[since, until]``."""
        return self._windowed_series(self._series(labels), since, until)

    def snapshot(self, window: Optional[tuple] = None) -> dict:
        out: dict = {}
        for series in self._recorder.names():
            if window is None:
                summary = self._recorder.summary(series)
            else:
                until = window[1] if len(window) > 1 else None
                summary = self._windowed_series(series, window[0], until)
                if summary is None:
                    continue
            out[series] = summary.as_row()
        return out


class MetricsRegistry:
    """Named metric instruments plus pull-based stats collectors."""

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}
        self._collectors: dict[str, Callable[[], dict]] = {}

    def _instrument(self, cls, name: str, description: str):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValidationError(
                    f"metric {name!r} is a {existing.kind}, not a {cls.kind}")
            return existing
        metric = cls(name, description)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, description: str = "") -> Counter:
        return self._instrument(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._instrument(Gauge, name, description)

    def histogram(self, name: str, description: str = "") -> Histogram:
        return self._instrument(Histogram, name, description)

    def register_collector(self, name: str,
                           collector: Callable[[], dict]) -> None:
        """Adopt an existing ``stats()``-style surface under ``name``."""
        self._collectors[name] = collector

    def collector_names(self) -> list[str]:
        return sorted(self._collectors)

    def snapshot(self, window: Optional[tuple] = None) -> dict:
        """One tree: pushed instruments plus every collected surface."""
        counters = {name: metric.snapshot()
                    for name, metric in sorted(self._metrics.items())
                    if isinstance(metric, Counter)}
        gauges = {name: metric.snapshot()
                  for name, metric in sorted(self._metrics.items())
                  if isinstance(metric, Gauge)}
        histograms = {name: metric.snapshot(window=window)
                      for name, metric in sorted(self._metrics.items())
                      if isinstance(metric, Histogram)}
        collected = {name: collector()
                     for name, collector in sorted(self._collectors.items())}
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "collected": collected,
        }


__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]
