"""Causal tracing over the simulated stack.

A :class:`TraceContext` names one node of a trace tree — ``(trace_id,
span_id)`` — and rides simnet :class:`~repro.simnet.network.Message`
objects as sideband metadata (the ``trace`` attribute, never the
payload): instrumented components *activate* a context around the work
they do, :meth:`Network.send` stamps the active context onto every
outgoing message, and delivery re-activates the stamped context around
``host.receive``.  That is the whole propagation protocol — a hop that
crosses a scheduled timer instead of a message captures the context
explicitly in its closure.

The determinism contract (pinned by the E17 differential arm) is that
tracing is **pure observation**:

- no RNG draws — span ids come from a tracer-local integer sequence,
  never :func:`repro.common.ids.new_id` (minted ids feed transaction
  identity and therefore chain hashes);
- no simnet traffic — spans are recorded in-process off the sim clock;
- no payload changes — ``Message.trace`` is excluded from equality and
  from :meth:`Message.size_bytes`, so wire stats and sampled latencies
  are untouched.

Exporters: :func:`spans_to_json` (the archival span-list format read by
``tools/trace2chrome.py``) and :func:`chrome_trace` (the Chrome
``trace_event`` JSON loadable in ``chrome://tracing`` / Perfetto —
processes are components, threads are traces).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

SPAN_FORMAT = "repro-spans/v1"

#: Sentinel: "parent from the active context" (``None`` means "no parent").
_INHERIT = object()


@dataclass(frozen=True)
class TraceContext:
    """One node of a trace tree, as carried across hops."""

    trace_id: str
    span_id: str


@dataclass
class Span:
    """A named, attributed interval of simulated time."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    component: str
    category: str
    start: float
    #: Tracer-local monotonic sequence — the deterministic tiebreak for
    #: spans sharing a start time (string span-ids sort lexically).
    seq: int
    end: Optional[float] = None
    status: str = "open"
    attrs: dict = field(default_factory=dict)

    @property
    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id)

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "component": self.component,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attrs": dict(self.attrs),
        }


class SpanRecorder:
    """Bounded in-process span store (append at begin, mutate at end)."""

    def __init__(self, max_spans: int = 250_000) -> None:
        self.max_spans = max_spans
        self.spans: list[Span] = []
        #: Spans begun past the cap (never stored; closing them still works).
        self.dropped = 0
        #: ``end()`` calls against an already-closed span — always a bug
        #: in the instrumentation; the failure-path tests pin this at 0.
        self.double_closes = 0

    def add(self, span: Span) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(span)

    def close(self, span: Span, end: float, status: str,
              attrs: Optional[dict] = None) -> None:
        if span.closed:
            self.double_closes += 1
            return
        span.end = end
        span.status = status
        if attrs:
            span.attrs.update(attrs)

    def open_spans(self, category: Optional[str] = None) -> list[Span]:
        return [s for s in self.spans if not s.closed
                and (category is None or s.category == category)]

    def closed_spans(self) -> list[Span]:
        return [s for s in self.spans if s.closed]

    def flush(self, now: float) -> int:
        """Close every still-open span as ``unfinished`` (pre-export)."""
        leftovers = self.open_spans()
        for span in leftovers:
            self.close(span, now, "unfinished")
        return len(leftovers)

    def stats(self) -> dict:
        return {
            "spans": len(self.spans),
            "open": len(self.open_spans()),
            "dropped": self.dropped,
            "double_closes": self.double_closes,
        }

    def to_json(self) -> dict:
        return spans_to_json(span.to_dict() for span in self.spans)

    def to_chrome(self) -> dict:
        return chrome_trace(span.to_dict() for span in self.spans)


class Tracer:
    """Deterministic causal tracer: context stack + keyed async spans.

    Synchronous work uses :meth:`begin`/:meth:`end` (or :meth:`span`);
    work that crosses a scheduled event or a message round-trip opens a
    *keyed* span (:meth:`open_span`) that whoever observes the outcome
    closes by key (:meth:`close_span`) — a response handler, a finality
    check, a crash.  Keyed opens are idempotent (duplicate deliveries
    re-find the live span) and keyed closes on an absent key are no-ops,
    so at-least-once delivery never double-closes.
    """

    def __init__(self, sim, max_spans: int = 250_000) -> None:
        self.sim = sim
        self.recorder = SpanRecorder(max_spans=max_spans)
        self._seq = 0
        self._stack: list[TraceContext] = []
        self._keyed: dict[tuple, Span] = {}
        self._correlations: dict[str, TraceContext] = {}
        #: Keyed opens that found the key already live (duplicate delivery).
        self.reopened = 0
        #: Strict keyed closes that found no live span (a true orphan).
        self.orphan_closes = 0

    # -- context management ----------------------------------------------------

    @property
    def current(self) -> Optional[TraceContext]:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def activate(self, context: Optional[TraceContext]):
        """Make ``context`` the active parent for the enclosed work."""
        if context is None:
            yield
            return
        self._stack.append(context)
        try:
            yield
        finally:
            self._stack.pop()

    def bind_correlation(self, correlation_id: str,
                         context: TraceContext) -> None:
        """Join key: lets log-pipeline hops re-find a request's trace."""
        self._correlations.setdefault(correlation_id, context)

    def context_for(self, correlation_id: str) -> Optional[TraceContext]:
        return self._correlations.get(correlation_id)

    # -- span lifecycle --------------------------------------------------------

    def _next_span(self, name: str, component: str, category: str,
                   parent, trace_id: Optional[str],
                   attrs: Optional[dict]) -> Span:
        parent_ctx = self.current if parent is _INHERIT else parent
        self._seq += 1
        span_id = f"s{self._seq}"
        if trace_id is None:
            trace_id = parent_ctx.trace_id if parent_ctx else f"t-{span_id}"
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_ctx.span_id if parent_ctx else None,
            component=component,
            category=category,
            start=self.sim.now,
            seq=self._seq,
            attrs=dict(attrs) if attrs else {},
        )
        self.recorder.add(span)
        return span

    def begin(self, name: str, component: str, *, parent=_INHERIT,
              trace_id: Optional[str] = None, category: str = "request",
              attrs: Optional[dict] = None) -> Span:
        """Open a span (parent defaults to the active context)."""
        return self._next_span(name, component, category, parent, trace_id, attrs)

    def end(self, span: Span, status: str = "ok",
            attrs: Optional[dict] = None) -> None:
        self.recorder.close(span, self.sim.now, status, attrs)

    @contextmanager
    def span(self, name: str, component: str, **kwargs):
        """Begin + activate + end around a block (status ``ok``)."""
        opened = self.begin(name, component, **kwargs)
        with self.activate(opened.context):
            yield opened
        self.end(opened)

    def instant(self, name: str, component: str, *,
                context: Optional[TraceContext] = _INHERIT,
                trace_id: Optional[str] = None, category: str = "event",
                attrs: Optional[dict] = None) -> Span:
        """A zero-duration marker (alerts, violations, membership)."""
        span = self._next_span(name, component, category, context,
                               trace_id, attrs)
        self.recorder.close(span, self.sim.now, "event")
        return span

    # -- keyed async spans -----------------------------------------------------

    def open_span(self, key: tuple, name: str, component: str, *,
                  parent=_INHERIT, trace_id: Optional[str] = None,
                  category: str = "request",
                  attrs: Optional[dict] = None) -> Span:
        existing = self._keyed.get(key)
        if existing is not None:
            self.reopened += 1
            return existing
        span = self._next_span(name, component, category, parent,
                               trace_id, attrs)
        self._keyed[key] = span
        return span

    def keyed(self, key: tuple) -> Optional[Span]:
        return self._keyed.get(key)

    def close_span(self, key: tuple, status: str = "ok",
                   attrs: Optional[dict] = None, *,
                   strict: bool = True) -> bool:
        """Close the keyed span; ``strict`` counts a missing key as an orphan.

        Non-strict closes are for observers that cannot know whether the
        open side ran (block inclusion closes mempool spans for every tx
        in the block, including txs submitted outside any trace).
        """
        span = self._keyed.pop(key, None)
        if span is None:
            if strict:
                self.orphan_closes += 1
            return False
        self.end(span, status, attrs)
        return True

    def close_prefixed(self, prefix: tuple, status: str,
                       attrs: Optional[dict] = None) -> int:
        """Close every keyed span whose key starts with ``prefix`` (crashes)."""
        matches = [key for key in self._keyed
                   if key[:len(prefix)] == prefix]
        for key in matches:
            self.close_span(key, status, attrs)
        return len(matches)

    def open_keys(self) -> list[tuple]:
        return list(self._keyed)

    # -- lifecycle / reporting -------------------------------------------------

    def flush(self) -> int:
        """Close leftover keyed + open spans (end of run, pre-export)."""
        for key in list(self._keyed):
            self.close_span(key, "unfinished")
        return self.recorder.flush(self.sim.now)

    def stats(self) -> dict:
        out = self.recorder.stats()
        out.update({
            "keyed_open": len(self._keyed),
            "reopened": self.reopened,
            "orphan_closes": self.orphan_closes,
            "correlations_bound": len(self._correlations),
        })
        return out


# -- exporters ------------------------------------------------------------------


def spans_to_json(spans: Iterable[dict]) -> dict:
    """The archival span-list document (``repro-spans/v1``)."""
    return {"format": SPAN_FORMAT, "spans": list(spans)}


def chrome_trace(spans: Iterable[dict],
                 time_scale: float = 1e6) -> dict:
    """Chrome ``trace_event`` JSON from span dicts.

    Sim time is seconds; ``trace_event`` wants microseconds, so
    ``time_scale`` defaults to 1e6 — one simulated second renders as one
    wall-clock second in the viewer.  Components map to processes and
    traces to threads (both small stable integers, with ``M`` metadata
    events naming them), so Perfetto groups a request's hops on one row.
    """
    spans = list(spans)
    components: dict[str, int] = {}
    traces: dict[str, int] = {}
    for span in spans:
        components.setdefault(str(span.get("component", "?")), len(components) + 1)
        traces.setdefault(str(span.get("trace_id", "?")), len(traces) + 1)
    events: list[dict] = []
    for component, pid in components.items():
        events.append({"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                       "args": {"name": component}})
    for span in spans:
        if span.get("end") is None:
            continue  # unexported: flush before converting
        pid = components[str(span.get("component", "?"))]
        tid = traces[str(span.get("trace_id", "?"))]
        start = float(span["start"])
        duration = float(span["end"]) - start
        args = dict(span.get("attrs", {}))
        args.update({
            "trace_id": span.get("trace_id"),
            "span_id": span.get("span_id"),
            "parent_id": span.get("parent_id"),
            "status": span.get("status"),
        })
        events.append({
            "ph": "X",
            "name": str(span.get("name", "?")),
            "cat": str(span.get("category", "request")),
            "ts": start * time_scale,
            "dur": duration * time_scale,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(document: dict) -> list[str]:
    """Shape-check a ``trace_event`` document; returns problem strings."""
    problems: list[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object")
            continue
        for required in ("ph", "name", "pid"):
            if required not in event:
                problems.append(f"event {index}: missing {required!r}")
        if event.get("ph") == "X":
            for required in ("ts", "dur"):
                if required not in event:
                    problems.append(f"event {index}: missing {required!r}")
    return problems


__all__ = [
    "SPAN_FORMAT",
    "TraceContext",
    "Span",
    "SpanRecorder",
    "Tracer",
    "spans_to_json",
    "chrome_trace",
    "validate_chrome_trace",
]
