"""One-call deployment of the full monitored federation.

Every example and benchmark builds the same stack: a federation, the
XACML access control components deployed over it, a workload and (usually)
DRAMS on top.  :class:`MonitoredFederation` packages that wiring so
experiment code reads as *what* is measured, not *how* the pieces connect.

The decision plane is topology configuration: ``build(plane=...)`` accepts
any :class:`~repro.accesscontrol.plane.DecisionPlane` and defaults to
:class:`~repro.accesscontrol.plane.SinglePdpPlane` (the paper's single
evaluator, bit-identical to the pre-plane wiring).  Pass
``ShardedPdpPlane(shards=4)`` to deploy a consistent-hashed PDP pool
instead; PEPs, DRAMS probes and the baselines all follow the plane —
including runtime membership changes, wherever they originate: scripted
(:meth:`MonitoredFederation.add_pdp_shard` /
:meth:`MonitoredFederation.drain_pdp_shard` schedule explicit mid-run
elasticity) or self-driving (``build(autoscaler=AutoscaleController(...))``
binds a controller that watches the plane's utilisation signal and
actuates membership itself — no harness scripting involved; see
:mod:`repro.accesscontrol.autoscale`).

So is the policy distribution plane: ``build(policy_plane=...)`` accepts
any :class:`~repro.policydist.plane.PolicyDistributionPlane` and defaults
to :class:`~repro.policydist.plane.SingleStorePlane` (one shared PRP,
bit-identical to the hard-wired store).  Pass
``ReplicatedPrpPlane(propagation_delay=...)`` to give every PDP shard and
the Analyser its own propagation-fed replica; the PAP keeps publishing
against the plane's authority store, and ``publish_policy`` stamps
mid-run publishes with the current simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.accesscontrol.autoscale import AutoscaleController
from repro.accesscontrol.pap import PolicyAdministrationPoint
from repro.accesscontrol.pdp_service import PdpService
from repro.accesscontrol.pep import EnforcedAccess, PolicyEnforcementPoint
from repro.accesscontrol.plane import DecisionPlane, SinglePdpPlane
from repro.accesscontrol.prp import PolicyRetrievalPoint
from repro.common.errors import ValidationError
from repro.common.ids import short_hash
from repro.drams.system import DramsConfig, DramsSystem
from repro.federation.federation import Federation, FederationConfig
from repro.metrics.recorder import percentile
from repro.metrics.windowed import WindowedMetrics
from repro.telemetry.stack import StackTelemetry
from repro.policydist.plane import (
    PolicyDistributionPlane,
    SingleStorePlane,
    as_policy_plane,
)
from repro.workload.generator import GeneratedRequest, RequestGenerator
from repro.workload.scenarios import Scenario


@dataclass
class StreamHandle:
    """Progress counters of one :meth:`MonitoredFederation.issue_stream` run."""

    issued: int = 0
    enforced: int = 0
    granted: int = 0
    last_at: float = 0.0
    metrics: Optional[WindowedMetrics] = None


@dataclass
class MonitoredFederation:
    """A federation with access control, workload and (optional) DRAMS."""

    scenario: Scenario
    federation: Federation
    prp: PolicyRetrievalPoint
    pap: PolicyAdministrationPoint
    plane: DecisionPlane
    peps: dict[str, PolicyEnforcementPoint]
    generator: RequestGenerator
    policy_plane: PolicyDistributionPlane = field(default_factory=SingleStorePlane)
    autoscaler: Optional[AutoscaleController] = None
    drams: Optional[DramsSystem] = None
    outcomes: list[EnforcedAccess] = field(default_factory=list)
    issued: int = 0
    telemetry: Optional[StackTelemetry] = None

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(
        cls,
        scenario: Scenario,
        clouds: int = 2,
        seed: int = 7,
        drams_config: Optional[DramsConfig] = None,
        with_drams: bool = True,
        federation_config: Optional[FederationConfig] = None,
        plane: Optional[DecisionPlane] = None,
        policy_plane: "Optional[PolicyDistributionPlane | PolicyRetrievalPoint]" = None,
        autoscaler: Optional[AutoscaleController] = None,
        pep_kwargs: Optional[dict] = None,
        light_clients: "bool | list[str]" = False,
        telemetry: bool = False,
    ) -> "MonitoredFederation":
        """Deploy the standard stack for ``scenario``.

        ``plane`` configures the decision plane topology (default: one
        PDP evaluator); ``policy_plane`` configures how policy reaches it
        (default: one shared store).  ``autoscaler`` binds and starts an
        :class:`AutoscaleController` against the deployed plane — the
        controller's decide loop is armed here, at build time, so it
        runs whether or not :meth:`start` (which only starts DRAMS) is
        ever called.  ``with_drams=False`` yields the unmonitored system
        (the E7 overhead experiment's control arm and the baseline
        experiments' substrate).  ``pep_kwargs`` is forwarded to every
        deployed :class:`PolicyEnforcementPoint` — the fault benchmarks
        use it to shorten ``request_timeout`` and install a
        ``RetryBackoff`` without changing the default topology.
        ``telemetry=True`` attaches a :class:`StackTelemetry` (causal
        tracer + unified metrics registry) to the finished stack; the
        attachment is pure observation, and the E17 differential arm
        pins a telemetry-attached run bit-identical to a bare one.
        ``light_clients=True`` attaches a sideband light auditor (header
        client + receipt consumer, see :mod:`repro.lightclient`) to every
        member tenant's PEP — or to a named subset when given a list.
        Requires ``with_drams``; attaching the auditors leaves the
        monitored system bit-identical (the E16 differential arm pins
        this).
        """
        fed_config = federation_config or FederationConfig(
            name=f"faas-{scenario.name}", cloud_count=clouds, seed=seed
        )
        federation = Federation(fed_config)

        policy_plane = as_policy_plane(
            policy_plane if policy_plane is not None else SingleStorePlane()
        ).deploy(federation)
        prp = policy_plane.authority
        infra_name = federation.infrastructure_tenant.name
        pap = PolicyAdministrationPoint(prp, administrator=f"pap@{infra_name}")
        pap.publish(scenario.policy_document)

        plane = plane if plane is not None else SinglePdpPlane()
        plane.deploy(federation, policy_plane)

        peps: dict[str, PolicyEnforcementPoint] = {}
        for tenant in federation.member_tenants:
            pep = PolicyEnforcementPoint(
                federation.network, tenant.address("pep"), tenant.name, plane,
                **(pep_kwargs or {})
            )
            # Placing the PEP in its tenant's cloud section is what lets a
            # locality-aware plane give it metro-latency links to shards
            # co-located in the same cloud; with unplaced shards (every
            # non-locality plane) it changes nothing.
            tenant.register_host(
                pep.address, section=tenant.sections[0] if tenant.sections else None
            )
            peps[tenant.name] = pep

        generator = RequestGenerator(scenario.workload, federation.rng.fork("scenario-workload"))
        if autoscaler is not None:
            autoscaler.bind(plane, federation.sim).start()
        drams = None
        if with_drams:
            drams = DramsSystem(federation, policy_plane, plane, peps,
                                drams_config or DramsConfig())
            if light_clients:
                drams.attach_light_clients(
                    None if light_clients is True else list(light_clients))
        elif light_clients:
            raise ValidationError("light_clients requires with_drams=True")
        else:
            federation.finalize_topology()
        stack = cls(
            scenario=scenario,
            federation=federation,
            prp=prp,
            pap=pap,
            plane=plane,
            peps=peps,
            generator=generator,
            policy_plane=policy_plane,
            autoscaler=autoscaler,
            drams=drams,
        )
        if telemetry:
            stack.telemetry = StackTelemetry(stack)
        return stack

    # -- lifecycle -----------------------------------------------------------------

    @property
    def sim(self):
        return self.federation.sim

    @property
    def pdp_service(self) -> PdpService:
        """The plane's primary evaluator (threat experiments target it)."""
        return self.plane.services[0]

    @property
    def pdp_services(self) -> list[PdpService]:
        """Every evaluator replica behind the plane."""
        return self.plane.services

    @property
    def light_clients(self) -> dict:
        """Attached light auditors by tenant name (empty without DRAMS)."""
        return self.drams.light_clients if self.drams is not None else {}

    def start(self) -> None:
        if self.drams is not None:
            self.drams.start()

    # -- policy churn ----------------------------------------------------------------

    def publish_policy(self, document: dict, at: Optional[float] = None):
        """Publish a new policy version through the PAP.

        With ``at=None`` the publish happens immediately, stamped with the
        current simulated time; otherwise it is scheduled for simulated
        time ``at`` (mid-traffic churn).  Either way it propagates through
        the deployed policy distribution plane.
        """
        if at is None:
            return self.pap.publish(document, published_at=self.sim.now)
        return self.sim.schedule_at(
            at,
            lambda: self.pap.publish(document, published_at=self.sim.now),
            label="policy-publish",
        )

    def run(self, until: Optional[float] = None) -> int:
        return self.sim.run(until=until)

    # -- elastic decision plane ------------------------------------------------------

    def add_pdp_shard(self, at: Optional[float] = None):
        """Grow the decision plane by one shard, now or at simulated ``at``.

        Requires an elastic plane (``ShardedPdpPlane``); monitoring
        probes attach through the plane's membership events, so a shard
        added mid-run is covered before its first request.
        """
        if at is None:
            return self.plane.add_shard()
        return self.sim.schedule_at(at, lambda: self.plane.add_shard(), label="plane-add-shard")

    def drain_pdp_shard(self, address: Optional[str] = None, at: Optional[float] = None):
        """Drain one shard (default: the newest), now or at simulated ``at``."""
        if at is None:
            return self.plane.drain_shard(address)
        return self.sim.schedule_at(
            at, lambda: self.plane.drain_shard(address), label="plane-drain-shard"
        )

    # -- fault injection ---------------------------------------------------------------

    def inject_faults(self, plan):
        """Arm a scripted fault timeline against this stack.

        ``plan`` is a :class:`~repro.faults.FaultPlan`; returns the armed
        :class:`~repro.faults.ChaosController`, whose
        :class:`~repro.faults.RecoveryRecorder` accumulates the recovery
        SLOs as the timeline executes.  An empty plan arms nothing and
        perturbs nothing — the differential arm of the fault benchmark
        pins that attaching the controller is bit-identical to not having
        it.
        """
        from repro.faults import ChaosController

        return ChaosController.for_stack(self, plan).arm()

    # -- workload ------------------------------------------------------------------

    def _tenant_for(self, request: GeneratedRequest, tenants: list[str]) -> str:
        """Round-robin entry tenant; ``tenants`` is the batch's hoisted,
        sorted PEP tenant list (validated non-empty by the caller)."""
        return tenants[request.index % len(tenants)]

    def issue_requests(
        self,
        count: int,
        start_at: float = 0.5,
        on_outcome: Optional[Callable[[EnforcedAccess], None]] = None,
    ) -> list[GeneratedRequest]:
        """Schedule ``count`` generated requests onto the PEPs.

        Each request enters through a member tenant's PEP at its generated
        arrival time; resources are stamped with an owner tenant so the
        scenarios' locality rules are exercised.
        """
        issued = []
        # Hoisted once per batch: both the round-robin entry tenant and the
        # owner-tenant assignment index into the same stable, sorted list.
        tenants = sorted(self.peps)
        if not tenants:
            raise ValidationError("no PEPs deployed")
        for request in self.generator.requests(count, start_at=start_at):
            tenant = self._tenant_for(request, tenants)
            resource = dict(request.resource)
            # Stable assignment (string hash() is salted per process).
            owner_index = int(short_hash(resource["resource-id"]), 16) % len(tenants)
            resource.setdefault("owner-tenant", tenants[owner_index])

            def dispatch(
                tenant=tenant,
                subject=request.subject,
                resource=resource,
                action=request.action,
            ) -> None:
                self.peps[tenant].request_access(
                    subject=subject,
                    resource=resource,
                    action=action,
                    callback=self._record_outcome(on_outcome),
                )

            self.sim.schedule_at(request.at, dispatch, label=f"workload:{request.index}")
            issued.append(request)
            self.issued += 1
        return issued

    def issue_stream(
        self,
        count: int,
        start_at: float = 0.5,
        on_outcome: Optional[Callable[[EnforcedAccess], None]] = None,
        record_outcomes: bool = False,
        window_seconds: float = 1.0,
    ) -> "StreamHandle":
        """Stream ``count`` generated requests through the PEPs.

        The constant-memory sibling of :meth:`issue_requests`: instead of
        materialising every request and scheduling the whole batch up
        front, one pending workload event exists at a time — each
        dispatch pulls the next request off the (already lazy) generator
        and schedules it before enforcing its own.  Outcomes fold into
        the returned handle's :class:`~repro.metrics.windowed.
        WindowedMetrics` rather than accumulating in ``self.outcomes``
        (opt back in with ``record_outcomes=True``), so a 10⁶-user /
        10⁶-request run's footprint is flat in the run length.  The
        request sequence itself (subjects, resources, arrival times,
        owner stamps) is drawn from the same rng stream and is identical
        to what :meth:`issue_requests` would produce.
        """
        tenants = sorted(self.peps)
        if not tenants:
            raise ValidationError("no PEPs deployed")
        stream = self.generator.requests(count, start_at=start_at)
        handle = StreamHandle(
            metrics=WindowedMetrics(window_seconds=window_seconds))

        def record(outcome: EnforcedAccess) -> None:
            handle.enforced += 1
            if outcome.granted:
                handle.granted += 1
            handle.metrics.observe(self.sim.now, outcome.latency, outcome.granted)
            if record_outcomes:
                self.outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(outcome)

        def schedule_next() -> None:
            request = next(stream, None)
            if request is None:
                return
            tenant = self._tenant_for(request, tenants)
            resource = dict(request.resource)
            owner_index = int(short_hash(resource["resource-id"]), 16) % len(tenants)
            resource.setdefault("owner-tenant", tenants[owner_index])

            def dispatch(
                tenant=tenant,
                subject=request.subject,
                resource=resource,
                action=request.action,
            ) -> None:
                # Pull-one/schedule-one: arm the next arrival before
                # enforcing this one, so the chain never starves and
                # never holds more than one pending workload event.
                schedule_next()
                self.peps[tenant].request_access(
                    subject=subject,
                    resource=resource,
                    action=action,
                    callback=record,
                )

            self.sim.schedule_at(request.at, dispatch, label=f"workload:{request.index}")
            handle.issued += 1
            handle.last_at = request.at
            self.issued += 1

        schedule_next()
        return handle

    def _record_outcome(
        self, extra: Optional[Callable[[EnforcedAccess], None]]
    ) -> Callable[[EnforcedAccess], None]:
        def callback(outcome: EnforcedAccess) -> None:
            self.outcomes.append(outcome)
            if extra is not None:
                extra(outcome)

        return callback

    # -- measurements -----------------------------------------------------------------

    def access_latencies(self) -> list[float]:
        return [outcome.latency for outcome in self.outcomes]

    def grant_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if o.granted) / len(self.outcomes)

    def run_summary(self) -> dict:
        """One dict summarising a finished run: outcomes, faults, traffic.

        The ``network`` block surfaces :class:`~repro.simnet.network.
        NetworkStats` — message and wire-byte totals, drops including
        ``dropped_dead``, and the per-kind traffic breakdown — which
        chaos runs previously had to read off ``network.stats`` by hand.
        With DRAMS deployed its ``stats()`` tree rides along; with
        telemetry attached, so do the tracer's span counters.
        """
        summary: dict = {
            "scenario": self.scenario.name,
            "sim_now": self.sim.now,
            "issued": self.issued,
            "enforced": len(self.outcomes),
            "grant_rate": round(self.grant_rate(), 4),
            "timeouts": sum(p.timeouts for p in self.peps.values()),
            "failovers": sum(p.failovers for p in self.peps.values()),
            "churn_reroutes": sum(p.churn_reroutes for p in self.peps.values()),
            "network": self.federation.network.stats.snapshot(),
        }
        latencies = sorted(self.access_latencies())
        if latencies:
            summary["latency"] = {
                "mean": sum(latencies) / len(latencies),
                "p50": percentile(latencies, 0.50),
                "p95": percentile(latencies, 0.95),
                "max": latencies[-1],
            }
        if self.drams is not None:
            summary["drams"] = self.drams.stats()
        if self.autoscaler is not None:
            summary["autoscaler"] = self.autoscaler.describe()
        if self.telemetry is not None:
            summary["tracing"] = self.telemetry.tracer.stats()
        return summary
