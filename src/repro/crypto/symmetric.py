"""Authenticated symmetric encryption (encrypt-then-MAC).

The Logging Interface shares a federation-wide symmetric key ``K`` and uses
it to encrypt log payloads before they are written to the blockchain, since
on-chain data is readable by every participant.

Construction (stdlib-only, as the environment has no AES package):

- key material is expanded into an *encryption key* and a *MAC key* via
  domain-separated SHA-256;
- the keystream is ``SHA256(enc_key || nonce || counter)`` blocks XORed over
  the plaintext (a standard PRF-in-CTR-mode stream cipher);
- integrity comes from HMAC-SHA-256 over ``nonce || ciphertext``
  (encrypt-then-MAC), verified in constant time before decryption.

This provides the IND-CPA + INT-CTXT interface the paper assumes of its
symmetric layer; swapping in AES-GCM would be a one-file change.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass

from repro.common.errors import CryptoError

_BLOCK = 32  # SHA-256 output size
NONCE_SIZE = 16
KEY_SIZE = 32


@dataclass(frozen=True)
class EncryptedBlob:
    """Nonce, ciphertext and MAC tag; the on-chain representation of a log."""

    nonce: bytes
    ciphertext: bytes
    tag: str

    def to_dict(self) -> dict:
        return {"nonce": self.nonce.hex(), "ciphertext": self.ciphertext.hex(), "tag": self.tag}

    @classmethod
    def from_dict(cls, data: dict) -> "EncryptedBlob":
        try:
            return cls(nonce=bytes.fromhex(data["nonce"]),
                       ciphertext=bytes.fromhex(data["ciphertext"]),
                       tag=str(data["tag"]))
        except (KeyError, ValueError, TypeError) as exc:
            raise CryptoError(f"malformed encrypted blob: {exc}") from exc

    def size_bytes(self) -> int:
        return len(self.nonce) + len(self.ciphertext) + len(self.tag) // 2


class SymmetricKey:
    """The federation key ``K`` held by every Logging Interface."""

    def __init__(self, key: bytes) -> None:
        if len(key) != KEY_SIZE:
            raise CryptoError(f"key must be {KEY_SIZE} bytes, got {len(key)}")
        self._key = key
        self._enc_key = hashlib.sha256(b"enc|" + key).digest()
        self._mac_key = hashlib.sha256(b"mac|" + key).digest()

    @classmethod
    def generate(cls, entropy: bytes | None = None) -> "SymmetricKey":
        """Generate a fresh key; deterministic if ``entropy`` is supplied."""
        if entropy is not None:
            return cls(hashlib.sha256(b"keygen|" + entropy).digest())
        return cls(os.urandom(KEY_SIZE))

    def fingerprint(self) -> str:
        """Public identifier of the key (safe to log)."""
        return hashlib.sha256(b"fp|" + self._key).hexdigest()[:16]

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        blocks = []
        for counter in range((length + _BLOCK - 1) // _BLOCK):
            blocks.append(hashlib.sha256(
                self._enc_key + nonce + counter.to_bytes(8, "big")).digest())
        return b"".join(blocks)[:length]

    def derive_nonce(self, plaintext: bytes, context: bytes = b"") -> bytes:
        """SIV-style synthetic nonce: a PRF of the plaintext (and context).

        Deterministic encryption makes simulation runs exactly reproducible
        from their seed, which random nonces silently broke.  The only
        leakage is plaintext *equality* under the same key and context —
        information DRAMS already publishes on-chain through the payload
        hash commitments the monitor contract matches on.
        """
        material = hmac.new(self._mac_key, b"nonce|" + context + b"|" + plaintext,
                            hashlib.sha256).digest()
        return material[:NONCE_SIZE]

    def encrypt(self, plaintext: bytes, nonce: bytes | None = None) -> EncryptedBlob:
        """Encrypt and authenticate ``plaintext``.

        A caller-supplied nonce must never repeat for the same key (or be
        synthesised via :meth:`derive_nonce`); when omitted a random nonce
        is drawn.
        """
        if nonce is None:
            nonce = os.urandom(NONCE_SIZE)
        if len(nonce) != NONCE_SIZE:
            raise CryptoError(f"nonce must be {NONCE_SIZE} bytes, got {len(nonce)}")
        stream = self._keystream(nonce, len(plaintext))
        ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
        tag = hmac.new(self._mac_key, nonce + ciphertext, hashlib.sha256).hexdigest()
        return EncryptedBlob(nonce=nonce, ciphertext=ciphertext, tag=tag)

    def decrypt(self, blob: EncryptedBlob) -> bytes:
        """Verify the MAC then decrypt; raises :class:`CryptoError` on tamper."""
        expected = hmac.new(self._mac_key, blob.nonce + blob.ciphertext,
                            hashlib.sha256).hexdigest()
        if not hmac.compare_digest(expected, blob.tag):
            raise CryptoError("MAC verification failed: ciphertext was tampered with")
        stream = self._keystream(blob.nonce, len(blob.ciphertext))
        return bytes(c ^ s for c, s in zip(blob.ciphertext, stream))
