"""Key management for federation components.

Each Logging Interface needs (a) the shared federation key ``K`` for log
confidentiality and (b) its own signing key for transaction authentication.
The :class:`KeyStore` is the software-only holder; when a
:class:`~repro.crypto.tpm.SimulatedTpm` is present the federation key is
*sealed* to the component's measured state instead (see the paper's
System Integrity discussion).
"""

from __future__ import annotations

from repro.common.errors import CryptoError
from repro.crypto.signatures import SigningKey, VerifyingKey
from repro.crypto.symmetric import SymmetricKey


class KeyStore:
    """Per-component key material and the federation's public-key registry."""

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self._symmetric: dict[str, SymmetricKey] = {}
        self._signing: SigningKey | None = None
        self._registry: dict[str, VerifyingKey] = {}

    # -- symmetric keys -----------------------------------------------------

    def store_symmetric(self, name: str, key: SymmetricKey) -> None:
        self._symmetric[name] = key

    def symmetric(self, name: str) -> SymmetricKey:
        try:
            return self._symmetric[name]
        except KeyError:
            raise CryptoError(f"{self.owner}: no symmetric key named {name!r}") from None

    def has_symmetric(self, name: str) -> bool:
        return name in self._symmetric

    def drop_symmetric(self, name: str) -> None:
        """Remove a key (used when a TPM refuses to unseal after tampering)."""
        self._symmetric.pop(name, None)

    # -- signing keys ----------------------------------------------------------

    def install_signing_key(self, key: SigningKey) -> None:
        self._signing = key

    @property
    def signing_key(self) -> SigningKey:
        if self._signing is None:
            raise CryptoError(f"{self.owner}: no signing key installed")
        return self._signing

    # -- public-key registry ------------------------------------------------------

    def register_peer(self, peer_id: str, key: VerifyingKey) -> None:
        existing = self._registry.get(peer_id)
        if existing is not None and existing != key:
            raise CryptoError(f"{self.owner}: conflicting key registration for {peer_id}")
        self._registry[peer_id] = key

    def peer_key(self, peer_id: str) -> VerifyingKey:
        try:
            return self._registry[peer_id]
        except KeyError:
            raise CryptoError(f"{self.owner}: unknown peer {peer_id!r}") from None

    def known_peers(self) -> list[str]:
        return sorted(self._registry)
