"""Simulated Trusted Platform Module.

The paper (Section III, "System Integrity") proposes trusted hardware to
(a) protect the shared symmetric key and (b) attest the integrity of
off-chain components (Logging Interfaces, probes).  We simulate the two TPM
features those rely on:

- **PCR-style measurement**: a component's "code" (here: a canonical
  description of its configuration/behaviour version) is extended into a
  platform configuration register; re-measuring after a compromise yields a
  different PCR value.
- **Sealed storage**: a key sealed under the current PCR value can only be
  unsealed while the PCR still matches — a tampered component loses access
  to the federation key, which is exactly the mitigation the paper sketches.

Attestation reports are signed with the TPM's endorsement key so a remote
verifier (the DRAMS orchestrator) can check component integrity on a
schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.errors import CryptoError
from repro.common.serialization import canonical_bytes
from repro.crypto.hashing import hash_pair, sha256_hex
from repro.crypto.signatures import Signature, SigningKey, VerifyingKey

_INITIAL_PCR = sha256_hex(b"pcr-initial")


@dataclass(frozen=True)
class AttestationReport:
    """Signed statement of the platform's current measurement."""

    tpm_id: str
    pcr_value: str
    nonce: str
    signature: Signature

    def verify(self, endorsement_key: VerifyingKey, expected_pcr: str, nonce: str) -> bool:
        """Check signature, freshness (nonce) and the expected measurement."""
        message = canonical_bytes(
            {"tpm": self.tpm_id, "pcr": self.pcr_value, "nonce": self.nonce})
        if not endorsement_key.verify(message, self.signature):
            return False
        return self.pcr_value == expected_pcr and self.nonce == nonce


@dataclass
class _SealedKey:
    pcr_value: str
    material: Any


class SimulatedTpm:
    """One TPM instance per protected host."""

    def __init__(self, tpm_id: str, endorsement_seed: bytes) -> None:
        self.tpm_id = tpm_id
        self._endorsement = SigningKey.generate(b"tpm|" + endorsement_seed)
        self._pcr = _INITIAL_PCR
        self._sealed: dict[str, _SealedKey] = {}

    @property
    def endorsement_key(self) -> VerifyingKey:
        return self._endorsement.public

    @property
    def pcr(self) -> str:
        return self._pcr

    def extend_pcr(self, measurement: Any) -> str:
        """Extend the PCR with a measurement (order-sensitive, irreversible)."""
        self._pcr = hash_pair(self._pcr, sha256_hex(canonical_bytes(measurement)))
        return self._pcr

    def reset(self) -> None:
        """Platform reboot: PCR returns to the initial value."""
        self._pcr = _INITIAL_PCR

    # -- sealed storage ------------------------------------------------------

    def seal(self, name: str, material: Any) -> None:
        """Bind ``material`` to the current PCR value."""
        self._sealed[name] = _SealedKey(pcr_value=self._pcr, material=material)

    def unseal(self, name: str) -> Any:
        """Release sealed material only if the PCR still matches."""
        try:
            entry = self._sealed[name]
        except KeyError:
            raise CryptoError(f"TPM {self.tpm_id}: nothing sealed under {name!r}") from None
        if entry.pcr_value != self._pcr:
            raise CryptoError(
                f"TPM {self.tpm_id}: unseal refused, platform measurement changed")
        return entry.material

    # -- attestation ------------------------------------------------------------

    def attest(self, nonce: str) -> AttestationReport:
        """Produce a signed quote of the current PCR for a verifier's nonce."""
        message = canonical_bytes({"tpm": self.tpm_id, "pcr": self._pcr, "nonce": nonce})
        return AttestationReport(
            tpm_id=self.tpm_id,
            pcr_value=self._pcr,
            nonce=nonce,
            signature=self._endorsement.sign(message),
        )
