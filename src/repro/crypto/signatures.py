"""Schnorr signatures over a Schnorr group (stdlib-only).

Blockchain transactions are signed by the submitting Logging Interface, and
blocks are signed by the miner, so the monitoring audit trail is
non-repudiable (a compromised component cannot forge another component's log
submissions without its private key).

We use the classic Schnorr identification-turned-signature scheme over a
DSA-style group (1024-bit modulus, 160-bit prime-order subgroup) with
deterministic per-message nonces derived RFC-6979-style (no RNG dependence,
no nonce-reuse risk).  This is real, verifiable public-key cryptography —
not a mock — while staying inside the stdlib.  The 1024/160 parameter size
trades security margin for simulation throughput; the scheme and code are
parameter-agnostic, so swapping in a larger group is a constants change.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.common.errors import CryptoError
from repro.common.fastpath import FLAGS

# Deterministically generated Schnorr group (see tools/gen_group.py):
# q is the first 160-bit probable prime from the SHA-256 stream
# "drams-group-<i>"; p = q*k + 1 is the first 1024-bit probable prime built
# from the same stream; g = 2^((p-1)/q) mod p generates the order-q
# subgroup.  Verified: p, q pass 40 Miller-Rabin rounds; g^q == 1 (mod p).
_P = int(
    "dc677600289551c0e35aca8028267f905639080950edee5165cbb3d94db4583f"
    "6e14c631631325186abd860da4b535d8e8b13765e4a4477a76cdbad52a594bed"
    "b1d9780a788ef3ce815a84b5537474664902b801ef9e42e0cfb1db09f3d44d6d"
    "c32ecb40735d4f1b6afb561b94f80fa6ead3d1c90eb5e55e7367d4b8c8098533",
    16,
)
_Q = int("de912c6cecc6551987f4c869db984a130eb5ed67", 16)
_G = int(
    "da3cccdd651c246ce97de254c5563144eed419a423acc602574a5f64b4742666"
    "92339bff03482aeb07860d071343192347063cc8ddd583973e3ff5b705bf7a6a"
    "0326d803944ab1a583b74420deeecd251278df8ed5c88d9fd5085f0ed514695e"
    "d9d6b5e176f2c73ee40327d4789523cdca73387ad244cf4ee348b89611b68524",
    16,
)


def _hash_to_int(*parts: bytes) -> int:
    digest = hashlib.sha256(b"|".join(parts)).digest()
    return int.from_bytes(digest, "big")


# -- fixed-base exponentiation cache (fast path) -------------------------------
#
# Every exponentiation in the scheme uses a *fixed* base — the generator g
# or a long-lived public key y — with ~160-bit exponents.  Precomputing the
# windowed powers of such a base once turns each subsequent exponentiation
# into ~40 modular multiplications (no squarings), about 4x faster than the
# generic square-and-multiply inside ``pow``.  Results are bit-identical;
# exponents beyond the table's range (forged signatures carry arbitrary e)
# fall back to ``pow``.

_WINDOW = 4
_RADIX = 1 << _WINDOW
_DIGITS = (_Q.bit_length() * 2 + _WINDOW - 1) // _WINDOW  # headroom above q


def _fixed_base_table(base: int) -> list[list[int]]:
    """``table[i][d] == base ** (d * 16**i) mod p`` for windowed digits."""
    table = []
    b = base % _P
    for _ in range(_DIGITS):
        row = [1] * _RADIX
        for d in range(1, _RADIX):
            row[d] = row[d - 1] * b % _P
        table.append(row)
        b = row[_RADIX - 1] * b % _P
    return table


def _fixed_base_pow(base: int, table: list[list[int]], exp: int) -> int:
    if exp < 0 or exp >> (_WINDOW * _DIGITS):
        return pow(base, exp, _P)
    acc = 1
    i = 0
    while exp:
        d = exp & (_RADIX - 1)
        if d:
            acc = acc * table[i][d] % _P
        exp >>= _WINDOW
        i += 1
    return acc


_G_TABLE: list[list[int]] | None = None


def _g_pow(exp: int) -> int:
    """``g ** exp mod p`` through the shared generator table."""
    global _G_TABLE
    if not FLAGS.verify_cache:
        return pow(_G, exp, _P)
    if _G_TABLE is None:
        _G_TABLE = _fixed_base_table(_G)
    return _fixed_base_pow(_G, _G_TABLE, exp)


@dataclass(frozen=True)
class Signature:
    """A Schnorr signature ``(challenge e, response s)``."""

    e: int
    s: int

    def to_dict(self) -> dict:
        return {"e": hex(self.e), "s": hex(self.s)}

    @classmethod
    def from_dict(cls, data: dict) -> "Signature":
        try:
            return cls(e=int(data["e"], 16), s=int(data["s"], 16))
        except (KeyError, ValueError, TypeError) as exc:
            raise CryptoError(f"malformed signature: {exc}") from exc


@dataclass(frozen=True)
class VerifyingKey:
    """Public key ``y = g^x mod p``."""

    y: int

    def key_id(self) -> str:
        """Short stable identifier for logs and registries."""
        return hashlib.sha256(hex(self.y).encode()).hexdigest()[:16]

    def _y_pow(self, exp: int) -> int:
        """``y ** exp mod p`` through this key's cached table."""
        if not FLAGS.verify_cache:
            return pow(self.y, exp, _P)
        table = getattr(self, "_fb_table", None)
        if table is None:
            table = _fixed_base_table(self.y)
            # Frozen dataclass: the table is a derived cache, not a field.
            object.__setattr__(self, "_fb_table", table)
        return _fixed_base_pow(self.y, table, exp)

    def verify(self, message: bytes, signature: Signature) -> bool:
        """Check ``e == H(g^s * y^e mod p || message)``."""
        if not (0 < signature.s < _Q) or signature.e <= 0:
            return False
        r = (_g_pow(signature.s) * self._y_pow(signature.e)) % _P
        expected = _hash_to_int(hex(r).encode(), message) % _Q
        return expected == signature.e

    def to_dict(self) -> dict:
        return {"y": hex(self.y)}

    @classmethod
    def from_dict(cls, data: dict) -> "VerifyingKey":
        try:
            return cls(y=int(data["y"], 16))
        except (KeyError, ValueError, TypeError) as exc:
            raise CryptoError(f"malformed verifying key: {exc}") from exc


class SigningKey:
    """Private Schnorr key; create with :meth:`generate` or from a seed."""

    def __init__(self, x: int) -> None:
        if not 0 < x < _Q:
            raise CryptoError("private exponent out of range")
        self._x = x
        self.public = VerifyingKey(y=pow(_G, x, _P))

    @classmethod
    def generate(cls, seed: bytes) -> "SigningKey":
        """Deterministically derive a key from seed material.

        Simulation components derive their identity keys from the run seed
        so experiments are reproducible end to end.
        """
        x = _hash_to_int(b"signing-key", seed) % _Q
        if x == 0:
            x = 1
        return cls(x)

    def _nonce(self, message: bytes) -> int:
        """Deterministic nonce (RFC-6979 flavoured): HMAC(x, message)."""
        key = self._x.to_bytes((_Q.bit_length() + 7) // 8, "big")
        k = int.from_bytes(hmac.new(key, b"nonce|" + message,
                                    hashlib.sha256).digest(), "big") % _Q
        return k if k != 0 else 1

    def sign(self, message: bytes) -> Signature:
        """Produce a Schnorr signature over ``message``."""
        k = self._nonce(message)
        r = _g_pow(k)
        e = _hash_to_int(hex(r).encode(), message) % _Q
        if e == 0:
            e = 1
        s = (k - self._x * e) % _Q
        return Signature(e=e, s=s)
