"""Merkle trees with inclusion proofs.

Used in two places:

- block bodies commit to their transaction list via a Merkle root, so light
  verification of "this log entry is in block B" needs only a logarithmic
  proof;
- the hybrid storage backend ([9] in the paper) periodically anchors a
  Merkle root over database rows on the chain, and its auditor checks rows
  against anchors with these proofs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.crypto.hashing import hash_pair, sha256_hex

_LEAF_PREFIX = "leaf|"
_EMPTY_ROOT = sha256_hex(b"merkle-empty")


def leaf_hash(data: str) -> str:
    """Domain-separated leaf hash (prevents leaf/interior confusion)."""
    return sha256_hex((_LEAF_PREFIX + data).encode())


@dataclass(frozen=True)
class MerkleProof:
    """Sibling path from a leaf to the root.

    ``path`` entries are ``(sibling_hash, sibling_is_right)``.
    """

    leaf_index: int
    leaf: str
    path: tuple[tuple[str, bool], ...]

    def verify(self, root: str) -> bool:
        """Recompute the root from the leaf along the path and compare."""
        current = leaf_hash(self.leaf)
        for sibling, sibling_is_right in self.path:
            if sibling_is_right:
                current = hash_pair(current, sibling)
            else:
                current = hash_pair(sibling, current)
        return current == root


class MerkleTree:
    """Binary Merkle tree over string items (odd levels duplicate the tail)."""

    def __init__(self, items: list[str]) -> None:
        self.items = list(items)
        self._levels: list[list[str]] = []
        self._build()

    def _build(self) -> None:
        if not self.items:
            self._levels = [[_EMPTY_ROOT]]
            return
        level = [leaf_hash(item) for item in self.items]
        self._levels = [level]
        while len(level) > 1:
            if len(level) % 2 == 1:
                level = level + [level[-1]]
                self._levels[-1] = level
            level = [hash_pair(level[i], level[i + 1]) for i in range(0, len(level), 2)]
            self._levels.append(level)

    @property
    def root(self) -> str:
        return self._levels[-1][0]

    def __len__(self) -> int:
        return len(self.items)

    def proof(self, index: int) -> MerkleProof:
        """Inclusion proof for the leaf at ``index``."""
        if not 0 <= index < len(self.items):
            raise ValidationError(f"leaf index out of range: {index}")
        path: list[tuple[str, bool]] = []
        position = index
        for level in self._levels[:-1]:
            if position % 2 == 0:
                sibling_index = position + 1
                sibling_is_right = True
            else:
                sibling_index = position - 1
                sibling_is_right = False
            sibling = level[sibling_index] if sibling_index < len(level) else level[position]
            path.append((sibling, sibling_is_right))
            position //= 2
        return MerkleProof(leaf_index=index, leaf=self.items[index], path=tuple(path))

    @classmethod
    def root_of(cls, items: list[str]) -> str:
        """The Merkle root of ``items`` without keeping the tree.

        Block validation recomputes body roots on every node, so this
        avoids the per-level list bookkeeping :class:`MerkleTree` keeps for
        proofs; the folding (odd levels duplicate the tail) is identical.
        """
        if not items:
            return _EMPTY_ROOT
        level = [leaf_hash(item) for item in items]
        while len(level) > 1:
            if len(level) % 2 == 1:
                level.append(level[-1])
            level = [hash_pair(level[i], level[i + 1]) for i in range(0, len(level), 2)]
        return level[0]
