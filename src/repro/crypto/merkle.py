"""Merkle trees with inclusion proofs.

Used in two places:

- block bodies commit to their transaction list via a Merkle root, so light
  verification of "this log entry is in block B" needs only a logarithmic
  proof;
- the hybrid storage backend ([9] in the paper) periodically anchors a
  Merkle root over database rows on the chain, and its auditor checks rows
  against anchors with these proofs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.crypto.hashing import hash_pair, sha256_hex

_LEAF_PREFIX = "leaf|"
_EMPTY_ROOT = sha256_hex(b"merkle-empty")


def leaf_hash(data: str) -> str:
    """Domain-separated leaf hash (prevents leaf/interior confusion)."""
    return sha256_hex((_LEAF_PREFIX + data).encode())


def tree_depth(size: int) -> int:
    """Path length of every proof in a tree over ``size`` leaves."""
    if size <= 1:
        return 0
    return (size - 1).bit_length()


@dataclass(frozen=True)
class MerkleProof:
    """Sibling path from a leaf to the root.

    ``path`` entries are ``(sibling_hash, sibling_is_right)``.
    """

    leaf_index: int
    leaf: str
    path: tuple[tuple[str, bool], ...]

    def verify(self, root: str, tree_size: int | None = None) -> bool:
        """Recompute the root from the leaf along the path and compare.

        ``leaf_index`` is bound into verification: at every level the
        sibling side must match the index's parity, and the index must fit
        the path length.  Odd levels duplicate their tail, so without this
        binding the last leaf of an odd-length level verifies at two
        distinct indexes (its own and the phantom duplicate's) — receipts
        could then claim a position that does not exist.  Passing
        ``tree_size`` additionally pins the path length to the tree's
        depth and rejects indexes past the real leaf count.
        """
        if self.leaf_index < 0 or self.leaf_index >= 1 << len(self.path):
            return False
        if tree_size is not None:
            if tree_size <= 0 or self.leaf_index >= tree_size:
                return False
            if len(self.path) != tree_depth(tree_size):
                return False
        current = leaf_hash(self.leaf)
        position = self.leaf_index
        for sibling, sibling_is_right in self.path:
            if sibling_is_right != (position % 2 == 0):
                return False
            if sibling_is_right:
                current = hash_pair(current, sibling)
            else:
                current = hash_pair(sibling, current)
            position //= 2
        return current == root

    def to_dict(self) -> dict:
        return {
            "leaf_index": self.leaf_index,
            "leaf": self.leaf,
            "path": [[sibling, is_right] for sibling, is_right in self.path],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MerkleProof":
        return cls(
            leaf_index=int(data["leaf_index"]),
            leaf=data["leaf"],
            path=tuple((sibling, bool(is_right)) for sibling, is_right in data["path"]),
        )


class MerkleTree:
    """Binary Merkle tree over string items (odd levels duplicate the tail)."""

    def __init__(self, items: list[str]) -> None:
        self.items = list(items)
        self._levels: list[list[str]] = []
        self._build()

    def _build(self) -> None:
        if not self.items:
            self._levels = [[_EMPTY_ROOT]]
            return
        level = [leaf_hash(item) for item in self.items]
        self._levels = [level]
        while len(level) > 1:
            if len(level) % 2 == 1:
                level = level + [level[-1]]
                self._levels[-1] = level
            level = [hash_pair(level[i], level[i + 1]) for i in range(0, len(level), 2)]
            self._levels.append(level)

    @property
    def root(self) -> str:
        return self._levels[-1][0]

    def __len__(self) -> int:
        return len(self.items)

    def proof(self, index: int) -> MerkleProof:
        """Inclusion proof for the leaf at ``index``."""
        if not 0 <= index < len(self.items):
            raise ValidationError(f"leaf index out of range: {index}")
        path: list[tuple[str, bool]] = []
        position = index
        for level in self._levels[:-1]:
            if position % 2 == 0:
                sibling_index = position + 1
                sibling_is_right = True
            else:
                sibling_index = position - 1
                sibling_is_right = False
            sibling = level[sibling_index] if sibling_index < len(level) else level[position]
            path.append((sibling, sibling_is_right))
            position //= 2
        return MerkleProof(leaf_index=index, leaf=self.items[index], path=tuple(path))

    @classmethod
    def root_of(cls, items: list[str]) -> str:
        """The Merkle root of ``items`` without keeping the tree.

        Block validation recomputes body roots on every node, so this
        avoids the per-level list bookkeeping :class:`MerkleTree` keeps for
        proofs; the folding (odd levels duplicate the tail) is identical.
        """
        if not items:
            return _EMPTY_ROOT
        level = [leaf_hash(item) for item in items]
        while len(level) > 1:
            if len(level) % 2 == 1:
                level.append(level[-1])
            level = [hash_pair(level[i], level[i + 1]) for i in range(0, len(level), 2)]
        return level[0]
