"""Cryptographic primitives, stdlib-only.

The paper's Logging Interface encrypts log entries with a federation-wide
symmetric key K before storing them on the (publicly readable) blockchain,
and the Discussion proposes a TPM to protect K and attest off-chain
components.  We implement:

- :mod:`repro.crypto.hashing` — SHA-256 helpers and hash chaining,
- :mod:`repro.crypto.symmetric` — encrypt-then-MAC AEAD built from
  SHA-256-CTR + HMAC (AES is unavailable without third-party packages; the
  interface and security role are the same),
- :mod:`repro.crypto.merkle` — Merkle trees with inclusion proofs (block
  bodies, hybrid-storage anchors),
- :mod:`repro.crypto.signatures` — Schnorr signatures over a
  Schnorr-group (node identity, transaction authentication),
- :mod:`repro.crypto.keystore` / :mod:`repro.crypto.tpm` — key management
  and the simulated trusted platform module.
"""

from repro.crypto.hashing import sha256_hex, sha256_bytes, hash_value, hmac_hex
from repro.crypto.symmetric import SymmetricKey, EncryptedBlob
from repro.crypto.merkle import MerkleTree, MerkleProof
from repro.crypto.signatures import SigningKey, VerifyingKey, Signature
from repro.crypto.keystore import KeyStore
from repro.crypto.tpm import SimulatedTpm, AttestationReport

__all__ = [
    "sha256_hex",
    "sha256_bytes",
    "hash_value",
    "hmac_hex",
    "SymmetricKey",
    "EncryptedBlob",
    "MerkleTree",
    "MerkleProof",
    "SigningKey",
    "VerifyingKey",
    "Signature",
    "KeyStore",
    "SimulatedTpm",
    "AttestationReport",
]
