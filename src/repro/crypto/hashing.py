"""SHA-256 helpers over canonical encodings.

All content hashes in the system go through :func:`hash_value` so that the
bytes being hashed are always the canonical JSON encoding — a hash computed
by a probe in tenant A is comparable with one computed by the smart contract
replicated in tenant B.

Hot-path note: objects that are hashed repeatedly (transactions, block
headers, log entries) cache their canonical encoding and call
:func:`sha256_hex` on the frozen bytes directly; :func:`hash_value` remains
the definitional form the caches are differentially tested against.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
from typing import Any

from repro.common.serialization import canonical_bytes


def sha256_bytes(data: bytes) -> bytes:
    """Raw SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """Hex SHA-256 digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


def hash_value(value: Any) -> str:
    """Hex SHA-256 of the canonical encoding of any serializable value."""
    return sha256_hex(canonical_bytes(value))


def hash_pair(left: str, right: str) -> str:
    """Combine two hex digests (Merkle interior node, hash chains).

    The input is the ASCII form ``left|right`` (byte-identical to the
    historical f-string rendering; spelled as a concatenation because this
    sits in the Merkle fold's inner loop).
    """
    return sha256_hex(left.encode() + b"|" + right.encode())


def hmac_hex(key: bytes, data: bytes) -> str:
    """Hex HMAC-SHA-256 of ``data`` under ``key``."""
    return _hmac.new(key, data, hashlib.sha256).hexdigest()


def constant_time_equals(a: str, b: str) -> bool:
    """Timing-safe string comparison (MAC verification)."""
    return _hmac.compare_digest(a, b)
