"""Simulated classical database.

An ordered key-value store with configurable write/read service times.  It
acknowledges writes after a (latency-model) delay, which is what makes the
hybrid design attractive: database acknowledgement is orders of magnitude
faster than chain finality.

The store supports :meth:`tamper` — direct mutation of stored rows — which
no real access path would offer, but which models exactly the adversary
the paper worries about: someone with write access to the log database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.common.errors import ValidationError
from repro.common.rng import SeededRng
from repro.simnet.simulator import Simulator


@dataclass
class DatabaseConfig:
    """Service-time parameters for the simulated DB."""

    write_latency: float = 0.002
    read_latency: float = 0.001
    jitter: float = 0.2  # +/- fraction of the base latency

    def __post_init__(self) -> None:
        if self.write_latency < 0 or self.read_latency < 0:
            raise ValidationError("latencies must be non-negative")
        if not 0 <= self.jitter < 1:
            raise ValidationError("jitter must be in [0, 1)")


@dataclass
class _Row:
    key: str
    value: Any
    written_at: float
    sequence: int


class DatabaseStore:
    """Insertion-ordered KV store with simulated service times."""

    def __init__(self, sim: Simulator, rng: SeededRng,
                 config: Optional[DatabaseConfig] = None, name: str = "logdb") -> None:
        self.sim = sim
        self.rng = rng.fork(f"db/{name}")
        self.config = config or DatabaseConfig()
        self.name = name
        self._rows: dict[str, _Row] = {}
        self._sequence = 0
        self.writes = 0
        self.reads = 0
        self.tampered_keys: set[str] = set()

    def _service_time(self, base: float) -> float:
        if base == 0:
            return 0.0
        spread = base * self.config.jitter
        return max(0.0, self.rng.uniform(base - spread, base + spread))

    # -- asynchronous API (simulation-time latencies) ------------------------------

    def write(self, key: str, value: Any,
              on_ack: Optional[Callable[[str], None]] = None) -> None:
        """Store ``value``; ``on_ack(key)`` fires after the write latency."""
        delay = self._service_time(self.config.write_latency)

        def commit() -> None:
            self._sequence += 1
            self._rows[key] = _Row(key=key, value=value,
                                   written_at=self.sim.now, sequence=self._sequence)
            self.writes += 1
            if on_ack is not None:
                on_ack(key)

        self.sim.schedule(delay, commit, label=f"db-write:{self.name}")

    def read(self, key: str, on_result: Callable[[Optional[Any]], None]) -> None:
        """Fetch a value; ``on_result`` fires after the read latency."""
        delay = self._service_time(self.config.read_latency)

        def fetch() -> None:
            self.reads += 1
            row = self._rows.get(key)
            on_result(row.value if row else None)

        self.sim.schedule(delay, fetch, label=f"db-read:{self.name}")

    # -- synchronous inspection (no simulated latency; for auditors/tests) --------

    def get(self, key: str) -> Optional[Any]:
        row = self._rows.get(key)
        return row.value if row else None

    def keys_in_order(self) -> list[str]:
        return [row.key for row in sorted(self._rows.values(),
                                          key=lambda r: r.sequence)]

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: str) -> bool:
        return key in self._rows

    # -- the adversary's API ---------------------------------------------------------

    def tamper(self, key: str, new_value: Any) -> bool:
        """Silently rewrite a stored row (adversarial mutation)."""
        row = self._rows.get(key)
        if row is None:
            return False
        row.value = new_value
        self.tampered_keys.add(key)
        return True

    def delete(self, key: str) -> bool:
        """Silently drop a row (adversarial suppression)."""
        if key in self._rows:
            del self._rows[key]
            self.tampered_keys.add(key)
            return True
        return False
