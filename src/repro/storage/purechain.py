"""Pure on-chain log storage.

Every log entry is its own blockchain transaction; durability equals chain
finality.  This is the baseline DRAMS configuration: maximal integrity
(tampering committed history requires rewriting the chain — experiment E4
quantifies that cost), at the price of per-entry consensus latency that
grows with entry size and PoW weight (experiments E2/E3).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.blockchain.node import BlockchainNode
from repro.blockchain.transaction import Transaction
from repro.crypto.signatures import SigningKey


class PureChainStore:
    """Stores values as ``kvstore.put`` transactions on the federation chain."""

    def __init__(self, node: BlockchainNode, sender: str,
                 signing_key: SigningKey, contract: str = "kvstore") -> None:
        self.node = node
        self.sender = sender
        self.signing_key = signing_key
        self.contract = contract
        self._seq = 0
        self._pending: dict[str, tuple[str, float, Optional[Callable[[str, float], None]]]] = {}
        self.stored = 0
        self.rejected = 0
        self.durable_latencies: list[float] = []
        node.on_head_change(lambda _head: self._settle())

    def store(self, key: str, value: Any,
              on_durable: Optional[Callable[[str, float], None]] = None) -> Optional[str]:
        """Submit one entry; ``on_durable(key, latency)`` fires at finality."""
        self._seq += 1
        tx = Transaction(
            sender=self.sender,
            contract=self.contract,
            method="put",
            args={"key": key, "value": value},
            seq=self._seq,
        ).sign(self.signing_key)
        if not self.node.submit_transaction(tx):
            self.rejected += 1
            return None
        self.stored += 1
        self._pending[tx.tx_id] = (key, self.node.sim.now, on_durable)
        return tx.tx_id

    def _settle(self) -> None:
        done = [tx_id for tx_id in self._pending if self.node.chain.is_final(tx_id)]
        for tx_id in done:
            key, submitted_at, on_durable = self._pending.pop(tx_id)
            latency = self.node.sim.now - submitted_at
            self.durable_latencies.append(latency)
            if on_durable is not None:
                on_durable(key, latency)

    def get(self, key: str) -> Optional[Any]:
        """Read back from replicated contract state."""
        return self.node.chain.state_of(self.contract)["data"].get(key)

    def pending_count(self) -> int:
        return len(self._pending)
