"""Integrity auditor for the hybrid store.

Replays every on-chain anchor against the current database contents:
recomputes each anchored row's Merkle leaf and rebuilds the root.  A root
mismatch proves the batch was tampered with after anchoring (attribution is
batch-granular: an adversary with full DB access can rewrite rows but not
the on-chain root).  Rows deleted from the DB are reported individually —
their keys are in the anchor.

Rows written after the last final anchor are *unauditable*: that set is the
integrity window the hybrid design trades for latency, and the E5
experiment reports its size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.merkle import MerkleTree
from repro.storage.database import DatabaseStore
from repro.storage.hybrid import HybridStore, row_leaf


@dataclass
class AuditReport:
    """Outcome of one full audit pass."""

    anchors_total: int = 0
    anchors_final: int = 0
    batches_verified: int = 0
    batches_violated: list[int] = field(default_factory=list)
    missing_rows: list[str] = field(default_factory=list)
    suspect_keys: list[str] = field(default_factory=list)
    unanchored_keys: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.batches_violated and not self.missing_rows

    def summary(self) -> str:
        verdict = "CLEAN" if self.clean else "TAMPERING DETECTED"
        return (f"audit: {verdict}; {self.batches_verified}/{self.anchors_final} "
                f"batches verified, {len(self.batches_violated)} violated, "
                f"{len(self.missing_rows)} rows missing, "
                f"{len(self.unanchored_keys)} rows in the integrity window")


class IntegrityAuditor:
    """Checks a database against its on-chain anchors."""

    def __init__(self, database: DatabaseStore, store: HybridStore) -> None:
        self.database = database
        self.store = store

    def audit(self) -> AuditReport:
        """Verify every final anchor; report violations and exposure."""
        report = AuditReport()
        report.anchors_total = len(self.store.anchors)
        report.unanchored_keys = self.store.unanchored_keys()
        for anchor in self.store.anchors:
            onchain = self.store.onchain_anchor(anchor.batch_index)
            if onchain is None:
                continue  # anchor tx not yet applied: still in the window
            report.anchors_final += 1
            leaves = []
            batch_missing = []
            for key in onchain["keys"]:
                if key not in self.database:
                    batch_missing.append(key)
                    leaves.append(row_leaf(key, None))
                else:
                    leaves.append(row_leaf(key, self.database.get(key)))
            root = MerkleTree(leaves).root
            if batch_missing:
                report.missing_rows.extend(batch_missing)
            if root != onchain["root"]:
                report.batches_violated.append(anchor.batch_index)
                report.suspect_keys.extend(
                    key for key in onchain["keys"] if key not in batch_missing)
            elif not batch_missing:
                report.batches_verified += 1
        return report
