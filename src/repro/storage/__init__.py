"""Log storage backends: pure chain, classical DB, hybrid.

The paper's Log Size discussion contrasts (a) storing logs directly on a
private blockchain (integrity, but latency grows with log size and PoW
weight) with (b) "a hybrid approach combining classical database with
blockchain" ([9]) trading latency against integrity guarantees.  This
package implements all three so experiment E5 can measure the trade-off:

- :class:`PureChainStore` — every entry is an on-chain transaction;
  durable once final; integrity window ≈ 0.
- :class:`DatabaseStore` — a simulated classical DB; fast acknowledgement;
  no tamper evidence at all.
- :class:`HybridStore` — entries go to the DB immediately, Merkle roots
  over batches are anchored on-chain every ``anchor_interval`` seconds;
  tampering is detectable for all anchored entries, leaving an integrity
  window equal to the anchoring period.
- :class:`IntegrityAuditor` — verifies DB contents against the anchors
  and quantifies what a tampering adversary could alter undetected.
"""

from repro.storage.database import DatabaseStore, DatabaseConfig
from repro.storage.purechain import PureChainStore
from repro.storage.hybrid import HybridStore, Anchor
from repro.storage.auditor import IntegrityAuditor, AuditReport

__all__ = [
    "DatabaseStore",
    "DatabaseConfig",
    "PureChainStore",
    "HybridStore",
    "Anchor",
    "IntegrityAuditor",
    "AuditReport",
]
