"""Hybrid database + blockchain log store (the paper's reference [9]).

Entries are written to a classical database (fast acknowledgement); every
``anchor_interval`` simulated seconds the store computes a Merkle root over
the batch of rows written since the previous anchor and commits *only that
root* (plus the ordered key list) to the chain.

Consequences, measured by experiment E5:

- acknowledgement latency ≈ database write latency (milliseconds);
- on-chain bytes per entry shrink by the batching factor;
- integrity guarantee becomes *delayed*: rows are tamper-evident only
  after their batch's anchor is final — the "integrity window" is at most
  ``anchor_interval`` + chain finality time, and rows inside the window
  are exposed (the trade-off the paper points at).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.blockchain.node import BlockchainNode
from repro.blockchain.transaction import Transaction
from repro.common.errors import ValidationError
from repro.crypto.hashing import hash_value
from repro.crypto.merkle import MerkleTree
from repro.crypto.signatures import SigningKey
from repro.storage.database import DatabaseStore


@dataclass
class Anchor:
    """One anchored batch: the Merkle root over its rows, in order."""

    batch_index: int
    keys: list[str]
    root: str
    anchored_at: float
    tx_id: str
    final: bool = False


def row_leaf(key: str, value: Any) -> str:
    """Canonical Merkle leaf for a DB row."""
    return hash_value({"key": key, "value": value})


class HybridStore:
    """DB writes now, Merkle anchors on-chain periodically."""

    def __init__(self, database: DatabaseStore, node: BlockchainNode, sender: str,
                 signing_key: SigningKey, anchor_interval: float = 5.0,
                 contract: str = "kvstore") -> None:
        if anchor_interval <= 0:
            raise ValidationError("anchor_interval must be positive")
        self.database = database
        self.node = node
        self.sender = sender
        self.signing_key = signing_key
        self.anchor_interval = anchor_interval
        self.contract = contract
        self._seq = 0
        self._unanchored: list[str] = []
        self._values_at_anchor: dict[str, str] = {}
        self.anchors: list[Anchor] = []
        self.ack_latencies: list[float] = []
        self.anchor_latencies: list[float] = []
        self._pending_anchor_txs: dict[str, Anchor] = {}
        self._stop: Optional[Callable[[], None]] = None
        node.on_head_change(lambda _head: self._settle_anchors())

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        """Begin periodic anchoring."""
        if self._stop is None:
            self._stop = self.node.sim.every(self.anchor_interval, self.anchor_now,
                                             label="hybrid-anchor")

    def stop(self) -> None:
        if self._stop is not None:
            self._stop()
            self._stop = None

    # -- writes --------------------------------------------------------------------

    def store(self, key: str, value: Any,
              on_ack: Optional[Callable[[str, float], None]] = None) -> None:
        """Write to the DB; acknowledgement is the DB's, not the chain's."""
        written_at = self.node.sim.now

        def acked(acked_key: str) -> None:
            latency = self.node.sim.now - written_at
            self.ack_latencies.append(latency)
            self._unanchored.append(acked_key)
            if on_ack is not None:
                on_ack(acked_key, latency)

        self.database.write(key, value, on_ack=acked)

    # -- anchoring --------------------------------------------------------------------

    def anchor_now(self) -> Optional[Anchor]:
        """Anchor all rows written since the previous anchor."""
        if not self._unanchored:
            return None
        keys = list(self._unanchored)
        self._unanchored.clear()
        leaves = []
        for key in keys:
            leaf = row_leaf(key, self.database.get(key))
            leaves.append(leaf)
            self._values_at_anchor[key] = leaf
        root = MerkleTree(leaves).root
        self._seq += 1
        tx = Transaction(
            sender=self.sender,
            contract=self.contract,
            method="put",
            args={"key": f"anchor-{len(self.anchors)}",
                  "value": {"root": root, "keys": keys}},
            seq=self._seq,
        ).sign(self.signing_key)
        anchor = Anchor(
            batch_index=len(self.anchors),
            keys=keys,
            root=root,
            anchored_at=self.node.sim.now,
            tx_id=tx.tx_id,
        )
        self.anchors.append(anchor)
        if self.node.submit_transaction(tx):
            self._pending_anchor_txs[tx.tx_id] = anchor
        return anchor

    def _settle_anchors(self) -> None:
        done = [tx_id for tx_id in self._pending_anchor_txs
                if self.node.chain.is_final(tx_id)]
        for tx_id in done:
            anchor = self._pending_anchor_txs.pop(tx_id)
            anchor.final = True
            self.anchor_latencies.append(self.node.sim.now - anchor.anchored_at)

    # -- inspection ----------------------------------------------------------------------

    def unanchored_keys(self) -> list[str]:
        """Rows currently inside the integrity window."""
        return list(self._unanchored)

    def integrity_window(self) -> float:
        """Worst-case seconds a row stays tamper-exposed."""
        chain_finality = (self.node.chain.config.confirmations
                          * self.node.chain.config.target_block_interval)
        return self.anchor_interval + chain_finality

    def onchain_anchor(self, batch_index: int) -> Optional[dict]:
        """The anchor as replicated on-chain (None until its tx applies)."""
        return self.node.chain.state_of(self.contract)["data"].get(
            f"anchor-{batch_index}")
