"""Signed contract-invoking transactions.

A transaction is a call ``contract.method(args)`` submitted by a federation
component (usually a Logging Interface writing a log entry).  Transactions
are Schnorr-signed by the sender; nodes reject invalid signatures, which is
what makes the on-chain audit trail non-repudiable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.common.errors import ValidationError
from repro.common.ids import new_id
from repro.common.serialization import canonical_bytes
from repro.crypto.hashing import hash_value
from repro.crypto.signatures import Signature, SigningKey, VerifyingKey


@dataclass
class Transaction:
    """A contract invocation recorded on chain.

    ``sender`` is the stable component id (e.g. ``"li-tenant-1"``); nodes
    look its verifying key up in their registry.  ``seq`` is a per-sender
    sequence number providing replay protection.
    """

    sender: str
    contract: str
    method: str
    args: dict[str, Any]
    seq: int
    tx_id: str = field(default_factory=lambda: new_id("tx"))
    submitted_at: float = 0.0
    signature: Optional[Signature] = None

    def signing_payload(self) -> bytes:
        """The bytes covered by the signature (everything but the signature)."""
        return canonical_bytes({
            "sender": self.sender,
            "contract": self.contract,
            "method": self.method,
            "args": self.args,
            "seq": self.seq,
            "tx_id": self.tx_id,
        })

    def sign(self, key: SigningKey) -> "Transaction":
        """Sign in place and return self (builder style)."""
        self.signature = key.sign(self.signing_payload())
        return self

    def verify(self, key: VerifyingKey) -> bool:
        if self.signature is None:
            return False
        return key.verify(self.signing_payload(), self.signature)

    def content_hash(self) -> str:
        """Hash of the signed content; used as the Merkle leaf for the block body."""
        return hash_value({
            "sender": self.sender,
            "contract": self.contract,
            "method": self.method,
            "args": self.args,
            "seq": self.seq,
            "tx_id": self.tx_id,
        })

    def size_bytes(self) -> int:
        overhead = 160 if self.signature is not None else 0
        return len(self.signing_payload()) + overhead

    def to_dict(self) -> dict:
        return {
            "sender": self.sender,
            "contract": self.contract,
            "method": self.method,
            "args": self.args,
            "seq": self.seq,
            "tx_id": self.tx_id,
            "submitted_at": self.submitted_at,
            "signature": self.signature.to_dict() if self.signature else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Transaction":
        try:
            signature = Signature.from_dict(data["signature"]) if data.get("signature") else None
            return cls(
                sender=data["sender"],
                contract=data["contract"],
                method=data["method"],
                args=dict(data["args"]),
                seq=int(data["seq"]),
                tx_id=data["tx_id"],
                submitted_at=float(data.get("submitted_at", 0.0)),
                signature=signature,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed transaction: {exc}") from exc
