"""Signed contract-invoking transactions.

A transaction is a call ``contract.method(args)`` submitted by a federation
component (usually a Logging Interface writing a log entry).  Transactions
are Schnorr-signed by the sender; nodes reject invalid signatures, which is
what makes the on-chain audit trail non-repudiable.

Fast path: the canonical encoding of the signed content is a pure function
of ``(sender, contract, method, args, seq, tx_id)``, and every consumer —
signing, signature checks, the content hash used as the Merkle leaf, the
size accounting in mempools and block assembly — needs exactly those bytes.
With :data:`repro.common.fastpath.FLAGS.encoding_cache` on, the encoding is
frozen on first use; the covered fields must then be treated as immutable.
Use :meth:`Transaction.replace` to derive a modified transaction (including
tampered ones in the threat experiments) — it returns a fresh instance with
fresh caches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.common.errors import ValidationError
from repro.common.fastpath import FLAGS
from repro.common.ids import new_id
from repro.common.serialization import canonical_bytes
from repro.crypto.hashing import sha256_hex
from repro.crypto.signatures import Signature, SigningKey, VerifyingKey

#: Flat size charged for an attached signature (two ~160-bit hex ints plus
#: framing) — kept identical to the seed accounting.
SIGNATURE_OVERHEAD_BYTES = 160


@dataclass
class Transaction:
    """A contract invocation recorded on chain.

    ``sender`` is the stable component id (e.g. ``"li-tenant-1"``); nodes
    look its verifying key up in their registry.  ``seq`` is a per-sender
    sequence number providing replay protection.
    """

    sender: str
    contract: str
    method: str
    args: dict[str, Any]
    seq: int
    tx_id: str = field(default_factory=lambda: new_id("tx"))
    submitted_at: float = 0.0
    signature: Optional[Signature] = None

    def _signed_content(self) -> dict:
        return {
            "sender": self.sender,
            "contract": self.contract,
            "method": self.method,
            "args": self.args,
            "seq": self.seq,
            "tx_id": self.tx_id,
        }

    def signing_payload(self) -> bytes:
        """The bytes covered by the signature (everything but the signature)."""
        if not FLAGS.encoding_cache:
            return canonical_bytes(self._signed_content())
        payload = getattr(self, "_payload_cache", None)
        if payload is None:
            payload = canonical_bytes(self._signed_content())
            self._payload_cache = payload
        return payload

    def sign(self, key: SigningKey) -> "Transaction":
        """Sign in place and return self (builder style)."""
        self.signature = key.sign(self.signing_payload())
        return self

    def verify(self, key: VerifyingKey) -> bool:
        if self.signature is None:
            return False
        return key.verify(self.signing_payload(), self.signature)

    def content_hash(self) -> str:
        """Hash of the signed content; used as the Merkle leaf for the block body.

        Equals ``hash_value(signed content)``: the hash is taken over the
        same canonical bytes as the signing payload, so the cached encoding
        serves both.
        """
        if not FLAGS.encoding_cache:
            return sha256_hex(canonical_bytes(self._signed_content()))
        digest = getattr(self, "_content_hash_cache", None)
        if digest is None:
            digest = sha256_hex(self.signing_payload())
            self._content_hash_cache = digest
        return digest

    def size_bytes(self) -> int:
        overhead = SIGNATURE_OVERHEAD_BYTES if self.signature is not None else 0
        return len(self.signing_payload()) + overhead

    def replace(self, **changes: Any) -> "Transaction":
        """Copy-on-write: a new transaction with ``changes`` applied.

        The only supported way to alter signed-over fields once a
        transaction has been hashed or signed (direct field mutation would
        desynchronise the frozen canonical encoding).  The signature is
        carried over unless overridden — deliberately, so the threat
        experiments can model content tampered *after* signing.
        """
        fields: dict[str, Any] = {
            "sender": self.sender,
            "contract": self.contract,
            "method": self.method,
            "args": dict(self.args),
            "seq": self.seq,
            "tx_id": self.tx_id,
            "submitted_at": self.submitted_at,
            "signature": self.signature,
        }
        unknown = set(changes) - set(fields)
        if unknown:
            raise ValidationError(f"unknown transaction fields: {sorted(unknown)}")
        fields.update(changes)
        return Transaction(**fields)

    def to_dict(self) -> dict:
        return {
            "sender": self.sender,
            "contract": self.contract,
            "method": self.method,
            "args": self.args,
            "seq": self.seq,
            "tx_id": self.tx_id,
            "submitted_at": self.submitted_at,
            "signature": self.signature.to_dict() if self.signature else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Transaction":
        try:
            signature = Signature.from_dict(data["signature"]) if data.get("signature") else None
            return cls(
                sender=data["sender"],
                contract=data["contract"],
                method=data["method"],
                args=dict(data["args"]),
                seq=int(data["seq"]),
                tx_id=data["tx_id"],
                submitted_at=float(data.get("submitted_at", 0.0)),
                signature=signature,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed transaction: {exc}") from exc
