"""Proof-of-work: targets, grinding, difficulty retargeting.

Difficulty is expressed in *bits*: a block hash (as a 256-bit integer) must
be strictly below ``2**(256 - bits)``.  Fractional bits arise naturally from
retargeting and simply shift the threshold.

Two production modes share these primitives:

- **real**: :func:`grind_nonce` iterates nonces until the header hash meets
  the target — actual SHA-256 work, used to validate that the statistical
  model matches reality (experiment E3); the fast path
  (:func:`grind_nonce_parts`) hashes a precomputed header prefix + nonce +
  suffix instead of re-rendering the header per attempt;
- **simulated**: block discovery times are drawn from the exponential
  distribution with rate ``hashrate / expected_hashes(bits)`` — the standard
  memoryless model of PoW — letting experiments sweep difficulties far
  beyond what Python could grind.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.crypto.hashing import sha256_hex

MAX_TARGET = 1 << 256


def target_for_bits(difficulty_bits: float) -> int:
    """Integer threshold a valid block hash must be below."""
    if difficulty_bits <= 0:
        return MAX_TARGET
    # 2^(256 - bits); computed via float exponent only for the fractional
    # part so large difficulties stay exact.
    whole = int(difficulty_bits)
    frac = difficulty_bits - whole
    target = MAX_TARGET >> whole
    if frac:
        target = int(target / (2.0**frac))
    return max(target, 1)


def meets_target(block_hash_hex: str, difficulty_bits: float) -> bool:
    """Does the hex hash satisfy the difficulty threshold?"""
    return int(block_hash_hex, 16) < target_for_bits(difficulty_bits)


def expected_hashes(difficulty_bits: float) -> float:
    """Mean number of hash evaluations to find a valid nonce."""
    return float(MAX_TARGET) / float(target_for_bits(difficulty_bits))


def grind_nonce(
    header_bytes_for_nonce: Callable[[int], bytes],
    difficulty_bits: float,
    max_attempts: Optional[int] = None,
    start_nonce: int = 0,
) -> Optional[tuple[int, str, int]]:
    """Search nonces until the header hash meets the target.

    ``header_bytes_for_nonce`` renders the header with a candidate nonce.
    Returns ``(nonce, hash_hex, attempts)`` or ``None`` if ``max_attempts``
    was exhausted.
    """
    target = target_for_bits(difficulty_bits)
    nonce = start_nonce
    attempts = 0
    while max_attempts is None or attempts < max_attempts:
        digest = sha256_hex(header_bytes_for_nonce(nonce))
        attempts += 1
        if int(digest, 16) < target:
            return nonce, digest, attempts
        nonce += 1
    return None


def grind_nonce_parts(
    prefix: bytes,
    suffix: bytes,
    difficulty_bits: float,
    max_attempts: Optional[int] = None,
    start_nonce: int = 0,
) -> Optional[tuple[int, str, int]]:
    """Fast-path grinding over a pre-rendered header.

    ``prefix``/``suffix`` come from
    :meth:`repro.blockchain.block.BlockHeader.nonce_parts`: the canonical
    header bytes before and after the nonce are constant across attempts,
    so each attempt hashes ``prefix + str(nonce) + suffix`` instead of
    re-encoding the header.  Hashes (and therefore the nonce found) are
    identical to :func:`grind_nonce` over the same header.
    """
    target = target_for_bits(difficulty_bits)
    nonce = start_nonce
    attempts = 0
    while max_attempts is None or attempts < max_attempts:
        digest = sha256_hex(prefix + str(nonce).encode("ascii") + suffix)
        attempts += 1
        if int(digest, 16) < target:
            return nonce, digest, attempts
        nonce += 1
    return None


def retarget(
    difficulty_bits: float,
    actual_interval: float,
    target_interval: float,
    *,
    max_step: float = 2.0,
    floor_bits: float = 1.0,
    ceil_bits: float = 64.0,
) -> float:
    """Adjust difficulty so block intervals drift toward the target.

    ``actual_interval`` is the mean observed interval across the retarget
    window.  The adjustment is clamped to a factor of ``max_step`` per
    retarget (as Bitcoin clamps to 4x) to avoid oscillation; difficulty in
    bits moves by ``log2`` of the clamped ratio.
    """
    import math

    if actual_interval <= 0:
        actual_interval = target_interval / max_step
    ratio = target_interval / actual_interval
    ratio = min(max(ratio, 1.0 / max_step), max_step)
    new_bits = difficulty_bits + math.log2(ratio)
    return min(max(new_bits, floor_bits), ceil_bits)
