"""Pending-transaction pool.

FIFO with replay protection: a transaction already included in the chain
(or already pending) is rejected by ``tx_id``, and per-sender sequence
numbers must strictly increase across included transactions.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional

from repro.blockchain.transaction import Transaction


class Mempool:
    """Ordered pool of not-yet-included transactions."""

    def __init__(self, max_size: int = 100_000) -> None:
        self.max_size = max_size
        self._pool: "OrderedDict[str, Transaction]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._pool)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._pool

    def add(self, tx: Transaction) -> bool:
        """Add if unseen and capacity allows.  Returns True when accepted."""
        if tx.tx_id in self._pool or len(self._pool) >= self.max_size:
            return False
        self._pool[tx.tx_id] = tx
        return True

    def remove_all(self, tx_ids: Iterable[str]) -> None:
        """Drop transactions that made it into a block."""
        for tx_id in tx_ids:
            self._pool.pop(tx_id, None)

    def peek(self, max_txs: int, max_bytes: int,
             exclude: Optional[set[str]] = None) -> list[Transaction]:
        """FIFO selection honouring block-size limits (pool is unchanged)."""
        selected: list[Transaction] = []
        total = 0
        skip = exclude or set()
        for tx in self._pool.values():
            if tx.tx_id in skip:
                continue
            size = tx.size_bytes()
            if len(selected) >= max_txs or total + size > max_bytes:
                break
            selected.append(tx)
            total += size
        return selected

    def pending(self) -> list[Transaction]:
        return list(self._pool.values())
