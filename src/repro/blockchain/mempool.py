"""Pending-transaction pool.

FIFO with replay protection: a transaction already included in the chain
(or already pending) is rejected by ``tx_id``, and per-sender sequence
numbers must strictly increase across included transactions.

Fast path: the serialized size of a transaction is fixed at admission
(sizes are a pure function of the signed content), so :meth:`Mempool.peek`
reuses the admission-time size instead of re-serialising the whole pool on
every block template.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional

from repro.common.fastpath import FLAGS
from repro.blockchain.transaction import Transaction


class Mempool:
    """Ordered pool of not-yet-included transactions."""

    def __init__(self, max_size: int = 100_000) -> None:
        self.max_size = max_size
        self._pool: "OrderedDict[str, Transaction]" = OrderedDict()
        self._sizes: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._pool)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._pool

    def add(self, tx: Transaction) -> bool:
        """Add if unseen and capacity allows.  Returns True when accepted."""
        if tx.tx_id in self._pool or len(self._pool) >= self.max_size:
            return False
        self._pool[tx.tx_id] = tx
        self._sizes[tx.tx_id] = tx.size_bytes()
        return True

    def remove_all(self, tx_ids: Iterable[str]) -> None:
        """Drop transactions that made it into a block."""
        for tx_id in tx_ids:
            self._pool.pop(tx_id, None)
            self._sizes.pop(tx_id, None)

    def peek(
        self,
        max_txs: int,
        max_bytes: int,
        exclude: Optional[set[str]] = None,
    ) -> list[Transaction]:
        """FIFO selection honouring block-size limits (pool is unchanged)."""
        selected: list[Transaction] = []
        total = 0
        skip = exclude or set()
        cached_sizes = self._sizes if FLAGS.encoding_cache else None
        for tx in self._pool.values():
            if tx.tx_id in skip:
                continue
            size = cached_sizes[tx.tx_id] if cached_sizes is not None else tx.size_bytes()
            if len(selected) >= max_txs or total + size > max_bytes:
                break
            selected.append(tx)
            total += size
        return selected

    def pending(self) -> list[Transaction]:
        return list(self._pool.values())
