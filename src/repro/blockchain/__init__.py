"""Private smart-contract blockchain.

DRAMS stores encrypted logs on a smart-contract blockchain and runs its
matching algorithms as contract code.  This package is a from-scratch
permissioned PoW chain with:

- signed transactions invoking named contracts (:mod:`transaction`),
- blocks with Merkle-committed bodies (:mod:`block`),
- proof-of-work with *tunable difficulty* and periodic retargeting
  (:mod:`pow`), in either ``real`` (hash-grinding) or ``simulated``
  (statistically-timed) mode — the paper's "PoW parameters can be
  dynamically tuned" lever,
- a deterministic smart-contract engine with event logs
  (:mod:`contracts`),
- a fork-choice-by-total-work chain with full validation and state
  replay (:mod:`chain`),
- a gossiping miner/validator node on the simulated network (:mod:`node`).
"""

from repro.blockchain.config import BlockchainConfig
from repro.blockchain.transaction import Transaction
from repro.blockchain.block import Block, BlockHeader
from repro.blockchain.pow import (
    target_for_bits,
    meets_target,
    grind_nonce,
    expected_hashes,
)
from repro.blockchain.contracts import (
    Contract,
    ContractContext,
    ContractEvent,
    ContractRegistry,
    ContractEngine,
    KeyValueContract,
)
from repro.blockchain.chain import Blockchain
from repro.blockchain.mempool import Mempool
from repro.blockchain.node import BlockchainNode

__all__ = [
    "BlockchainConfig",
    "Transaction",
    "Block",
    "BlockHeader",
    "target_for_bits",
    "meets_target",
    "grind_nonce",
    "expected_hashes",
    "Contract",
    "ContractContext",
    "ContractEvent",
    "ContractRegistry",
    "ContractEngine",
    "KeyValueContract",
    "Blockchain",
    "Mempool",
    "BlockchainNode",
]
