"""Chain-wide configuration.

A private federation chain lets operators pick every consensus parameter —
the paper's Discussion leans on exactly this ("all PoW parameters can be
dynamically tuned according to the needs").  The config is hashed into the
genesis block so all nodes provably run the same parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class BlockchainConfig:
    """Consensus and block-production parameters.

    Attributes:
        chain_id: Name binding a chain instance (goes into genesis).
        difficulty_bits: Initial PoW difficulty; a valid block hash must be
            below ``2**(256 - difficulty_bits)``.  May be fractional after
            retargeting.
        target_block_interval: Desired seconds between blocks; the
            retargeting rule steers difficulty toward this.
        retarget_window: Number of blocks between difficulty adjustments
            (0 disables retargeting).
        max_block_txs: Cap on transactions per block.
        max_block_bytes: Cap on the serialized size of a block body.
        pow_mode: ``"real"`` grinds SHA-256 nonces; ``"simulated"`` skips
            grinding and relies on statistically-timed block production in
            the simulator (identical chain semantics, cheap large sweeps).
        confirmations: Depth at which a transaction is considered final by
            clients (the integrity experiments sweep this).
    """

    chain_id: str = "drams-chain"
    difficulty_bits: float = 12.0
    target_block_interval: float = 2.0
    retarget_window: int = 16
    max_block_txs: int = 200
    max_block_bytes: int = 512 * 1024
    pow_mode: str = "simulated"
    confirmations: int = 3

    def __post_init__(self) -> None:
        # Coerce numerics so int-valued configs hash identically to floats.
        object.__setattr__(self, "difficulty_bits", float(self.difficulty_bits))
        object.__setattr__(self, "target_block_interval", float(self.target_block_interval))
        if not 0 < self.difficulty_bits < 200:
            raise ConfigError(f"difficulty_bits out of range: {self.difficulty_bits}")
        if self.target_block_interval <= 0:
            raise ConfigError("target_block_interval must be positive")
        if self.retarget_window < 0:
            raise ConfigError("retarget_window must be >= 0")
        if self.max_block_txs <= 0:
            raise ConfigError("max_block_txs must be positive")
        if self.max_block_bytes <= 0:
            raise ConfigError("max_block_bytes must be positive")
        if self.pow_mode not in ("real", "simulated"):
            raise ConfigError(f"pow_mode must be 'real' or 'simulated', got {self.pow_mode!r}")
        if self.confirmations < 1:
            raise ConfigError("confirmations must be >= 1")

    def to_dict(self) -> dict:
        return {
            "chain_id": self.chain_id,
            "difficulty_bits": self.difficulty_bits,
            "target_block_interval": self.target_block_interval,
            "retarget_window": self.retarget_window,
            "max_block_txs": self.max_block_txs,
            "max_block_bytes": self.max_block_bytes,
            "pow_mode": self.pow_mode,
            "confirmations": self.confirmations,
        }
