"""Deterministic smart-contract engine.

Contracts are deterministic state machines replicated on every node: the
same chain prefix must yield the same contract state and the same emitted
events everywhere, because DRAMS alert events are consumed wherever a
Logging Interface is attached.

A contract is a Python class exposing ``invoke(state, method, args, ctx)``.
Determinism rules (enforced by convention and by the differential tests):

- state is plain serializable data (dicts/lists/strings/ints),
- no wall-clock, randomness or I/O — only ``ctx`` (block height/timestamp,
  sender, tx id) may inject environment data,
- events are the only output channel besides the return value.

The engine charges simple *gas* per invocation (a size-proportional cost),
giving experiments a handle on contract-execution cost without a full VM.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import ValidationError
from repro.common.fastpath import FLAGS
from repro.common.serialization import canonical_bytes


@dataclass(frozen=True)
class ContractContext:
    """Environment visible to a contract invocation."""

    block_height: int
    block_timestamp: float
    sender: str
    tx_id: str


@dataclass(frozen=True)
class ContractEvent:
    """An event emitted during block application (e.g. a DRAMS alert)."""

    contract: str
    name: str
    payload: dict[str, Any]
    block_height: int
    tx_id: str

    def to_dict(self) -> dict:
        return {
            "contract": self.contract,
            "name": self.name,
            "payload": self.payload,
            "block_height": self.block_height,
            "tx_id": self.tx_id,
        }


class ContractError(ValidationError):
    """Raised by contract code to revert an invocation."""


class Contract(ABC):
    """Base class for contract implementations."""

    #: Stable name under which the contract is deployed.
    name: str = ""

    #: Declares that ``invoke`` validates its inputs and raises
    #: :class:`ContractError` *before* mutating any state, so the engine's
    #: fast path may execute it directly on the live state (no per-call
    #: deep copy) without losing revert-on-error semantics.  Leave False
    #: for contracts that can fail mid-mutation.
    checked_invoke: bool = False

    @abstractmethod
    def initial_state(self) -> dict[str, Any]:
        """Fresh state at deployment (genesis)."""

    @abstractmethod
    def invoke(self, state: dict[str, Any], method: str, args: dict[str, Any],
               ctx: ContractContext, emit: Callable[[str, dict[str, Any]], None]) -> Any:
        """Execute ``method``; mutate ``state`` in place; emit events via ``emit``.

        Raise :class:`ContractError` to revert (state changes of the failed
        invocation are discarded by the engine).
        """


class KeyValueContract(Contract):
    """Minimal contract used by tests and examples: a guarded KV store."""

    name = "kvstore"
    checked_invoke = True

    def initial_state(self) -> dict[str, Any]:
        return {"data": {}, "writes": 0}

    def invoke(self, state, method, args, ctx, emit):
        if method == "put":
            key, value = args.get("key"), args.get("value")
            if not isinstance(key, str):
                raise ContractError("put requires a string 'key'")
            state["data"][key] = value
            state["writes"] += 1
            emit("Put", {"key": key, "by": ctx.sender})
            return {"ok": True}
        if method == "get":
            return {"value": state["data"].get(args.get("key"))}
        if method == "delete":
            key = args.get("key")
            if key not in state["data"]:
                raise ContractError(f"no such key: {key!r}")
            del state["data"][key]
            emit("Deleted", {"key": key, "by": ctx.sender})
            return {"ok": True}
        raise ContractError(f"unknown method: {method!r}")


class ContractRegistry:
    """The contract *code* deployed on a chain (identical on every node)."""

    def __init__(self) -> None:
        self._contracts: dict[str, Contract] = {}

    def deploy(self, contract: Contract) -> None:
        if not contract.name:
            raise ValidationError("contract must define a non-empty name")
        if contract.name in self._contracts:
            raise ValidationError(f"contract already deployed: {contract.name}")
        self._contracts[contract.name] = contract

    def get(self, name: str) -> Contract:
        try:
            return self._contracts[name]
        except KeyError:
            raise ValidationError(f"no contract deployed under {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._contracts)


@dataclass
class ExecutionReceipt:
    """Outcome of one transaction's contract invocation."""

    tx_id: str
    ok: bool
    result: Any = None
    error: str = ""
    gas_used: int = 0
    events: list[ContractEvent] = field(default_factory=list)


class ContractEngine:
    """Per-node executor holding the replicated contract state."""

    GAS_BASE = 100
    GAS_PER_BYTE = 1

    def __init__(self, registry: ContractRegistry) -> None:
        self.registry = registry
        self._state: dict[str, dict[str, Any]] = {
            name: registry.get(name).initial_state() for name in registry.names()
        }
        self.gas_used_total = 0

    def reset(self) -> None:
        """Back to genesis state (used on chain reorganisations)."""
        self._state = {name: self.registry.get(name).initial_state()
                       for name in self.registry.names()}
        self.gas_used_total = 0

    def dump_state(self) -> dict[str, dict[str, Any]]:
        """Deep copy of all contract state (chain snapshotting)."""
        return copy.deepcopy(self._state)

    def load_state(self, snapshot: dict[str, dict[str, Any]]) -> None:
        """Restore a snapshot produced by :meth:`dump_state`."""
        self._state = copy.deepcopy(snapshot)

    def state_of(self, contract_name: str) -> dict[str, Any]:
        """Read-only view of a contract's current state."""
        try:
            return self._state[contract_name]
        except KeyError:
            raise ValidationError(f"no state for contract {contract_name!r}") from None

    def execute(self, contract_name: str, method: str, args: dict[str, Any],
                ctx: ContractContext) -> ExecutionReceipt:
        """Run one invocation transactionally (state reverts on error).

        Slow path: the invocation runs on a deep copy of the contract's
        state, which replaces the live state only on success.  Fast path
        (``FLAGS.contract_inplace``, contracts declaring
        ``checked_invoke``): the invocation runs directly on live state —
        safe because such contracts raise before mutating, so a failed
        invocation has by construction changed nothing.  Receipts and
        events are identical either way.
        """
        contract = self.registry.get(contract_name)
        state = self._state[contract_name]
        in_place = FLAGS.contract_inplace and contract.checked_invoke
        scratch = state if in_place else copy.deepcopy(state)
        events: list[ContractEvent] = []

        def emit(name: str, payload: dict[str, Any]) -> None:
            events.append(ContractEvent(
                contract=contract_name, name=name, payload=payload,
                block_height=ctx.block_height, tx_id=ctx.tx_id))

        gas = self.GAS_BASE + self.GAS_PER_BYTE * len(canonical_bytes(args))
        try:
            result = contract.invoke(scratch, method, args, ctx, emit)
        except ContractError as exc:
            self.gas_used_total += gas
            return ExecutionReceipt(tx_id=ctx.tx_id, ok=False, error=str(exc), gas_used=gas)
        if not in_place:
            self._state[contract_name] = scratch
        self.gas_used_total += gas
        return ExecutionReceipt(tx_id=ctx.tx_id, ok=True, result=result,
                                gas_used=gas, events=events)
