"""Block store, validation, fork choice and state replay.

Fork choice is by *total work* (sum of ``2**difficulty_bits`` over the
branch), ties broken by lowest tip hash, so all honest nodes converge on the
same head given the same block set.

Contract state is maintained incrementally while blocks extend the current
head; a reorganisation resets the engine and replays the winning branch from
genesis (chains in DRAMS experiments are short enough that simplicity wins
over snapshot bookkeeping).  Contract events emitted by newly applied blocks
are pushed to subscribers — this is how security alerts produced by the
monitor contract reach the Logging Interfaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.common.errors import ValidationError
from repro.common.fastpath import FLAGS
from repro.crypto.hashing import hash_value
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.crypto.signatures import SigningKey, VerifyingKey
from repro.blockchain.block import Block, BlockHeader, make_genesis
from repro.blockchain.config import BlockchainConfig
from repro.blockchain.contracts import (
    ContractContext,
    ContractEngine,
    ContractEvent,
    ContractRegistry,
    ExecutionReceipt,
)
from repro.blockchain.mempool import Mempool
from repro.blockchain.pow import grind_nonce, grind_nonce_parts, meets_target, retarget
from repro.blockchain.transaction import Transaction

EventSubscriber = Callable[[ContractEvent, str], None]
KeyLookup = Callable[[str], Optional[VerifyingKey]]


class ChainValidationError(ValidationError):
    """A block failed consensus validation."""


@dataclass
class TxLocation:
    """Where a transaction landed on the main chain."""

    block_hash: str
    height: int
    receipt: ExecutionReceipt


@dataclass
class _Snapshot:
    """Chain state checkpoint taken at a specific applied block."""

    height: int
    engine_state: dict
    sender_seqs: dict[str, set[int]]
    tx_locations: dict[str, TxLocation]


class Blockchain:
    """A node's view of the chain plus replicated contract state.

    ``key_lookup`` resolves a sender/miner id to its verifying key; when it
    returns None for a sender, signature validation fails closed (unknown
    senders are rejected) unless ``require_signatures`` is False (some unit
    tests exercise consensus without the key registry).
    """

    SNAPSHOT_INTERVAL = 25
    #: Per-block Merkle trees memoised for proof service; receipts cluster
    #: on recent blocks, so a handful of trees covers nearly every request.
    PROOF_TREE_CACHE = 32
    #: Verified-set entries kept before a cache resets.  A reset is always
    #: safe — the next validation simply re-verifies — so this just bounds
    #: memory on very long runs (cf. the LRU bound on the decision cache).
    VERIFY_CACHE_LIMIT = 200_000

    def __init__(self, config: BlockchainConfig, registry: ContractRegistry,
                 key_lookup: Optional[KeyLookup] = None,
                 require_signatures: bool = True) -> None:
        self.config = config
        self.registry = registry
        self.key_lookup = key_lookup
        self.require_signatures = require_signatures and key_lookup is not None
        self.engine = ContractEngine(registry)
        self.genesis = make_genesis(config.chain_id, hash_value(config.to_dict()),
                                    config.difficulty_bits)
        self._blocks: dict[str, Block] = {self.genesis.hash: self.genesis}
        self._total_work: dict[str, float] = {self.genesis.hash: 0.0}
        self._head_hash: str = self.genesis.hash
        self._applied_branch: list[str] = [self.genesis.hash]
        # Blocks whose state is currently applied, kept in sync *during*
        # head switches (``_head_hash`` only moves at the end of one).
        # Confirmation queries from contract-event subscribers fire
        # mid-replay, so they must read this view, not the stale head.
        self._applied_heights: dict[str, int] = {self.genesis.hash: 0}
        self._applied_tip_height: int = 0
        self._tx_locations: dict[str, TxLocation] = {}
        self._sender_seqs: dict[str, set[int]] = {}
        self._subscribers: list[EventSubscriber] = []
        self._difficulty_cache: dict[str, float] = {self.genesis.hash: config.difficulty_bits}
        self._snapshots: dict[str, _Snapshot] = {}
        self._orphaned_txs: dict[str, Transaction] = {}
        self._proof_trees: dict[str, MerkleTree] = {}
        # Once-per-node verification caches (fast path): a signature or a
        # block body is cryptographically checked at most once per chain
        # replica, however many admission checks, block validations or
        # block templates revisit it.  Keys commit to the full verified
        # content (content hash + signature values + verifying key for
        # transactions; block hash + body leaf hashes for Merkle roots),
        # so a cache hit proves the exact bytes were already checked —
        # tampering with a cached object always misses the cache.
        self._verified_tx_keys: set[tuple] = set()
        self._merkle_verified: set[tuple] = set()
        self.reorgs = 0
        self.rejected_blocks = 0
        self._take_snapshot(self.genesis.hash, 0)

    # -- inspection ------------------------------------------------------------

    @property
    def head(self) -> Block:
        return self._blocks[self._head_hash]

    @property
    def height(self) -> int:
        return self.head.height

    def get_block(self, block_hash: str) -> Optional[Block]:
        return self._blocks.get(block_hash)

    def has_block(self, block_hash: str) -> bool:
        return block_hash in self._blocks

    def main_chain(self) -> list[Block]:
        """Genesis-to-head block list."""
        return [self._blocks[h] for h in self._applied_branch]

    def total_work(self, block_hash: str) -> float:
        return self._total_work[block_hash]

    def block_count(self) -> int:
        return len(self._blocks)

    def tx_location(self, tx_id: str) -> Optional[TxLocation]:
        """Main-chain location of a transaction, if included."""
        return self._tx_locations.get(tx_id)

    def inclusion_proof(self, tx_id: str) -> Optional[MerkleProof]:
        """Merkle proof that ``tx_id`` is in its main-chain block's body.

        The proof's leaf is the transaction's content hash (the commitment
        block headers carry), so a light client holding only the block
        header can check membership in O(log block-size) hashes.  Returns
        None for unknown or orphaned transactions.  Proof trees are
        memoised per block — serving many receipts from one block builds
        the tree once.
        """
        location = self._tx_locations.get(tx_id)
        if location is None or location.block_hash not in self._applied_heights:
            return None
        block = self._blocks[location.block_hash]
        tree = self._proof_trees.get(location.block_hash)
        if tree is None:
            tree = MerkleTree([tx.content_hash() for tx in block.transactions])
            if len(self._proof_trees) >= self.PROOF_TREE_CACHE:
                self._proof_trees.clear()
            self._proof_trees[location.block_hash] = tree
        for index, tx in enumerate(block.transactions):
            if tx.tx_id == tx_id:
                return tree.proof(index)
        return None

    def confirmations(self, tx_id: str) -> int:
        """Blocks on top of (and including) the tx's block; 0 if unconfirmed.

        A transaction whose block was orphaned by a reorg (and that has not
        been re-included on the winning branch) reports 0, and queries made
        while a reorg is still replaying count from the applied tip rather
        than the not-yet-updated head, so subscribers never see phantom
        confirmations.
        """
        location = self._tx_locations.get(tx_id)
        if location is None or location.block_hash not in self._applied_heights:
            return 0
        return self._applied_tip_height - location.height + 1

    def is_final(self, tx_id: str) -> bool:
        return self.confirmations(tx_id) >= self.config.confirmations

    def headers_after(self, locator: list[str], limit: int) -> list[BlockHeader]:
        """Main-chain headers following the best locator match.

        ``locator`` lists block hashes the requester already holds, newest
        first (light clients space them exponentially, Bitcoin-style); the
        reply starts just above the first one found on the main chain, or
        just above genesis when none match — the requester may sit on a
        branch we reorged away from, but it always holds genesis (it can
        reconstruct it from the chain config alone).
        """
        start = 1
        for block_hash in locator:
            height = self._applied_heights.get(block_hash)
            if (height is not None and height < len(self._applied_branch)
                    and self._applied_branch[height] == block_hash):
                start = height + 1
                break
        chunk = self._applied_branch[start:start + max(0, limit)]
        return [self._blocks[block_hash].header for block_hash in chunk]

    def subscribe_events(self, subscriber: EventSubscriber) -> None:
        """Receive contract events as their blocks are applied to the head."""
        self._subscribers.append(subscriber)

    # -- difficulty schedule -------------------------------------------------

    def expected_difficulty(self, parent_hash: str) -> float:
        """Difficulty required of the block extending ``parent_hash``.

        Retargets every ``retarget_window`` blocks using the mean block
        interval across the previous window on that branch.
        """
        parent = self._blocks.get(parent_hash)
        if parent is None:
            raise ChainValidationError(f"unknown parent: {parent_hash}")
        window = self.config.retarget_window
        parent_difficulty = self._difficulty_cache.get(parent_hash,
                                                       parent.header.difficulty_bits)
        next_height = parent.height + 1
        if window == 0 or next_height % window != 0 or next_height < window:
            return parent_difficulty
        # Walk back `window` blocks on this branch to measure elapsed time.
        cursor = parent
        for _ in range(window - 1):
            cursor = self._blocks[cursor.header.prev_hash]
        elapsed = parent.header.timestamp - cursor.header.timestamp
        actual_interval = elapsed / max(1, window - 1)
        return retarget(parent_difficulty, actual_interval,
                        self.config.target_block_interval)

    # -- validation ----------------------------------------------------------

    def _validate_block(self, block: Block) -> None:
        header = block.header
        parent = self._blocks.get(header.prev_hash)
        if parent is None:
            raise ChainValidationError(f"unknown parent {header.prev_hash[:12]}")
        if header.height != parent.height + 1:
            raise ChainValidationError(
                f"height {header.height} does not extend parent height {parent.height}")
        if header.timestamp < parent.header.timestamp:
            raise ChainValidationError("timestamp decreases along the chain")
        if not (FLAGS.verify_cache and self._merkle_key(block) in self._merkle_verified):
            if block.compute_merkle_root() != header.merkle_root:
                raise ChainValidationError("merkle root does not match block body")
            if FLAGS.verify_cache:
                if len(self._merkle_verified) >= self.VERIFY_CACHE_LIMIT:
                    self._merkle_verified.clear()
                self._merkle_verified.add(self._merkle_key(block))
        if len(block.transactions) > self.config.max_block_txs:
            raise ChainValidationError("too many transactions in block")
        if block.body_size_bytes() > self.config.max_block_bytes:
            raise ChainValidationError("block body exceeds size limit")
        expected_bits = self.expected_difficulty(header.prev_hash)
        if abs(header.difficulty_bits - expected_bits) > 1e-9:
            raise ChainValidationError(
                f"difficulty {header.difficulty_bits} != expected {expected_bits}")
        if self.config.pow_mode == "real" and not meets_target(block.hash,
                                                               header.difficulty_bits):
            raise ChainValidationError("block hash does not meet the PoW target")
        seen_tx_ids: set[str] = set()
        for tx in block.transactions:
            if tx.tx_id in seen_tx_ids:
                raise ChainValidationError(f"duplicate tx in block: {tx.tx_id}")
            seen_tx_ids.add(tx.tx_id)
            self._validate_tx_signature(tx)
        if self.require_signatures:
            miner_key = self.key_lookup(header.miner) if self.key_lookup else None
            if miner_key is None or not block.verify_miner_signature(miner_key):
                raise ChainValidationError(f"bad miner signature from {header.miner}")

    @staticmethod
    def _merkle_key(block: Block) -> tuple:
        """Verified-set key: header hash plus the body's (cached) leaves."""
        return (block.hash, tuple(tx.content_hash() for tx in block.transactions))

    def _validate_tx_signature(self, tx: Transaction) -> None:
        if not self.require_signatures:
            return
        key = self.key_lookup(tx.sender) if self.key_lookup else None
        if key is None:
            raise ChainValidationError(f"unknown transaction sender {tx.sender!r}")
        cache_key = None
        if FLAGS.verify_cache and tx.signature is not None:
            cache_key = (tx.content_hash(), tx.signature.e, tx.signature.s, key.y)
            if cache_key in self._verified_tx_keys:
                return
        if not tx.verify(key):
            raise ChainValidationError(f"invalid signature on tx {tx.tx_id}")
        if cache_key is not None:
            if len(self._verified_tx_keys) >= self.VERIFY_CACHE_LIMIT:
                self._verified_tx_keys.clear()
            self._verified_tx_keys.add(cache_key)

    def validate_transaction(self, tx: Transaction) -> bool:
        """Admission check used by mempools (signature + not already final)."""
        if tx.tx_id in self._tx_locations:
            return False
        try:
            self._validate_tx_signature(tx)
        except ChainValidationError:
            return False
        return True

    # -- insertion & fork choice ----------------------------------------------

    def add_block(self, block: Block) -> bool:
        """Validate and insert; returns True if the head advanced or moved."""
        if block.hash in self._blocks:
            return False
        try:
            self._validate_block(block)
        except ChainValidationError:
            self.rejected_blocks += 1
            raise
        self._blocks[block.hash] = block
        self._difficulty_cache[block.hash] = block.header.difficulty_bits
        parent_work = self._total_work[block.header.prev_hash]
        self._total_work[block.hash] = parent_work + 2.0 ** block.header.difficulty_bits
        return self._maybe_update_head(block)

    def _maybe_update_head(self, candidate: Block) -> bool:
        current_work = self._total_work[self._head_hash]
        new_work = self._total_work[candidate.hash]
        if new_work < current_work:
            return False
        if new_work == current_work and candidate.hash >= self._head_hash:
            return False
        self._switch_head(candidate.hash)
        return True

    def _branch_of(self, tip_hash: str) -> list[str]:
        branch = []
        cursor = tip_hash
        while cursor != self.genesis.hash:
            branch.append(cursor)
            cursor = self._blocks[cursor].header.prev_hash
        branch.append(self.genesis.hash)
        branch.reverse()
        return branch

    def _take_snapshot(self, block_hash: str, height: int) -> None:
        self._snapshots[block_hash] = _Snapshot(
            height=height,
            engine_state=self.engine.dump_state(),
            sender_seqs={k: set(v) for k, v in self._sender_seqs.items()},
            tx_locations=dict(self._tx_locations),
        )
        # Bound memory: keep the deepest few snapshots plus genesis.
        if len(self._snapshots) > 12:
            removable = sorted(
                (h for h in self._snapshots if h != self.genesis.hash),
                key=lambda h: self._snapshots[h].height)
            del self._snapshots[removable[0]]

    def _switch_head(self, new_head: str) -> None:
        new_branch = self._branch_of(new_head)
        if (len(new_branch) > len(self._applied_branch)
                and new_branch[:len(self._applied_branch)] == self._applied_branch):
            # Fast path: the new head simply extends the current head.
            for block_hash in new_branch[len(self._applied_branch):]:
                self._apply_block(self._blocks[block_hash])
            self._applied_branch = new_branch
        else:
            # Reorg: restore the deepest snapshot still on the winning branch
            # and replay from there (genesis always has a snapshot).
            self.reorgs += 1
            old_branch = list(self._applied_branch)
            restore_index = 0
            for index in range(len(new_branch) - 1, -1, -1):
                if new_branch[index] in self._snapshots:
                    restore_index = index
                    break
            snapshot = self._snapshots[new_branch[restore_index]]
            self.engine.load_state(snapshot.engine_state)
            self._sender_seqs = {k: set(v) for k, v in snapshot.sender_seqs.items()}
            self._tx_locations = dict(snapshot.tx_locations)
            # Rewind the applied view to the restore point before replay so
            # losing-branch blocks stop counting as confirmed immediately.
            self._applied_heights = {
                block_hash: height
                for height, block_hash in enumerate(new_branch[: restore_index + 1])
            }
            self._applied_tip_height = restore_index
            for block_hash in new_branch[restore_index + 1:]:
                self._apply_block(self._blocks[block_hash])
            self._applied_branch = new_branch
            # Transactions confirmed on the losing branch but absent from
            # the winning one must go back to the mempool, or their log
            # entries would be silently lost (the node drains
            # take_orphaned_txs after every head change).
            new_set = set(new_branch)
            for block_hash in old_branch:
                if block_hash in new_set:
                    continue
                for tx in self._blocks[block_hash].transactions:
                    if tx.tx_id not in self._tx_locations:
                        self._orphaned_txs[tx.tx_id] = tx
        self._head_hash = new_head

    def take_orphaned_txs(self) -> list[Transaction]:
        """Drain transactions displaced by reorgs (for mempool re-injection)."""
        orphans = [tx for tx_id, tx in self._orphaned_txs.items()
                   if tx_id not in self._tx_locations]
        self._orphaned_txs.clear()
        return orphans

    def _apply_block(self, block: Block) -> None:
        if block.height > 0 and block.height % self.SNAPSHOT_INTERVAL == 0:
            self._take_snapshot(block.header.prev_hash, block.height - 1)
        self._applied_heights[block.hash] = block.height
        self._applied_tip_height = block.height
        for tx in block.transactions:
            used = self._sender_seqs.setdefault(tx.sender, set())
            if tx.seq in used:
                # Replay within the branch: skip rather than poison the block
                # (mirrors nonce-too-low handling in production chains).
                continue
            used.add(tx.seq)
            ctx = ContractContext(
                block_height=block.height,
                block_timestamp=block.header.timestamp,
                sender=tx.sender,
                tx_id=tx.tx_id,
            )
            receipt = self.engine.execute(tx.contract, tx.method, tx.args, ctx)
            self._tx_locations[tx.tx_id] = TxLocation(
                block_hash=block.hash, height=block.height, receipt=receipt)
            for event in receipt.events:
                for subscriber in self._subscribers:
                    subscriber(event, block.hash)

    # -- block production -----------------------------------------------------

    def create_block(self, miner: str, transactions: list[Transaction],
                     timestamp: float, signing_key: Optional[SigningKey] = None,
                     max_grind_attempts: Optional[int] = None) -> Block:
        """Assemble (and in real mode, mine) a block extending the head."""
        parent = self.head
        difficulty = self.expected_difficulty(parent.hash)
        header = BlockHeader(
            height=parent.height + 1,
            prev_hash=parent.hash,
            merkle_root="",
            timestamp=max(timestamp, parent.header.timestamp),
            difficulty_bits=difficulty,
            miner=miner,
        )
        block = Block(header=header, transactions=list(transactions))
        header.merkle_root = block.compute_merkle_root()
        if self.config.pow_mode == "real":
            if FLAGS.verify_cache:
                prefix, suffix = header.nonce_parts()
                found = grind_nonce_parts(prefix, suffix, difficulty,
                                          max_attempts=max_grind_attempts)
            else:
                found = grind_nonce(header.bytes_for_nonce, difficulty,
                                    max_attempts=max_grind_attempts)
            if found is None:
                raise ChainValidationError("mining attempt budget exhausted")
            header.nonce = found[0]
        if signing_key is not None:
            block.sign(signing_key)
        if FLAGS.verify_cache:
            # The miner just derived the root from this very body; its own
            # validation pass need not recompute it.
            if len(self._merkle_verified) >= self.VERIFY_CACHE_LIMIT:
                self._merkle_verified.clear()
            self._merkle_verified.add(self._merkle_key(block))
        return block

    def collect_block_txs(self, mempool: Mempool) -> list[Transaction]:
        """Pick mempool transactions eligible for the next block."""
        candidates = mempool.peek(self.config.max_block_txs, self.config.max_block_bytes,
                                  exclude=set(self._tx_locations))
        return [tx for tx in candidates if self.validate_transaction(tx)]

    def state_of(self, contract_name: str) -> dict[str, Any]:
        """Current main-chain state of a contract."""
        return self.engine.state_of(contract_name)
