"""Blocks and headers.

The header commits to the parent hash, a Merkle root over the transaction
content hashes, the mining difficulty, timestamp and nonce; the block hash
is the SHA-256 of the canonical header encoding.  Miners additionally sign
blocks (a permissioned-chain touch: every block is attributable to a
federation node).

Fast path: with :data:`repro.common.fastpath.FLAGS.encoding_cache` on, the
header hash is memoised against the exact field values it was computed
from (so in-place header edits — mining sets the Merkle root and nonce
after construction, the fork-choice tests forge fields deliberately —
always invalidate it), and the Merkle root / body size reuse the
transactions' frozen content hashes and sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ValidationError
from repro.common.fastpath import FLAGS
from repro.common.serialization import canonical_bytes, canonical_json
from repro.crypto.hashing import sha256_hex
from repro.crypto.merkle import MerkleTree
from repro.crypto.signatures import Signature, SigningKey, VerifyingKey
from repro.blockchain.transaction import Transaction


@dataclass
class BlockHeader:
    """Consensus-critical block metadata."""

    height: int
    prev_hash: str
    merkle_root: str
    timestamp: float
    difficulty_bits: float
    miner: str
    nonce: int = 0

    def bytes_for_nonce(self, nonce: int) -> bytes:
        """Canonical header bytes with ``nonce`` substituted (for grinding).

        Numeric fields are coerced to float so the encoding is identical
        before and after a serialization round-trip (canonical JSON
        distinguishes ``10`` from ``10.0``).
        """
        return canonical_bytes(
            {
                "height": int(self.height),
                "prev_hash": self.prev_hash,
                "merkle_root": self.merkle_root,
                "timestamp": float(self.timestamp),
                "difficulty_bits": float(self.difficulty_bits),
                "miner": self.miner,
                "nonce": int(nonce),
            }
        )

    def nonce_parts(self) -> tuple[bytes, bytes]:
        """``(prefix, suffix)`` such that ``prefix + str(n) + suffix`` equals
        :meth:`bytes_for_nonce` for every nonce ``n``.

        Canonical JSON emits keys in sorted order, so the keys before and
        after ``"nonce"`` are fixed; grinding then hashes two constant byte
        strings around the changing nonce instead of re-rendering the whole
        header per attempt (pinned to :meth:`bytes_for_nonce` by property
        tests).
        """
        head = canonical_json(
            {
                "difficulty_bits": float(self.difficulty_bits),
                "height": int(self.height),
                "merkle_root": self.merkle_root,
                "miner": self.miner,
            }
        )
        tail = canonical_json(
            {
                "prev_hash": self.prev_hash,
                "timestamp": float(self.timestamp),
            }
        )
        prefix = head[:-1] + ',"nonce":'
        suffix = "," + tail[1:]
        return prefix.encode("utf-8"), suffix.encode("utf-8")

    def _hash_key(self) -> tuple:
        return (
            self.height,
            self.prev_hash,
            self.merkle_root,
            self.timestamp,
            self.difficulty_bits,
            self.miner,
            self.nonce,
        )

    def block_hash(self) -> str:
        if not FLAGS.encoding_cache:
            return sha256_hex(self.bytes_for_nonce(self.nonce))
        key = self._hash_key()
        memo = getattr(self, "_hash_memo", None)
        if memo is not None and memo[0] == key:
            return memo[1]
        digest = sha256_hex(self.bytes_for_nonce(self.nonce))
        self._hash_memo = (key, digest)
        return digest

    def to_dict(self) -> dict:
        return {
            "height": self.height,
            "prev_hash": self.prev_hash,
            "merkle_root": self.merkle_root,
            "timestamp": self.timestamp,
            "difficulty_bits": self.difficulty_bits,
            "miner": self.miner,
            "nonce": self.nonce,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BlockHeader":
        try:
            return cls(
                height=int(data["height"]),
                prev_hash=data["prev_hash"],
                merkle_root=data["merkle_root"],
                timestamp=float(data["timestamp"]),
                difficulty_bits=float(data["difficulty_bits"]),
                miner=data["miner"],
                nonce=int(data["nonce"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed block header: {exc}") from exc


@dataclass
class Block:
    """A header plus its transaction body and the miner's signature."""

    header: BlockHeader
    transactions: list[Transaction] = field(default_factory=list)
    miner_signature: Optional[Signature] = None

    @property
    def height(self) -> int:
        return self.header.height

    @property
    def hash(self) -> str:
        return self.header.block_hash()

    def compute_merkle_root(self) -> str:
        return MerkleTree.root_of([tx.content_hash() for tx in self.transactions])

    def body_size_bytes(self) -> int:
        return sum(tx.size_bytes() for tx in self.transactions)

    def sign(self, key: SigningKey) -> "Block":
        self.miner_signature = key.sign(self.hash.encode())
        return self

    def verify_miner_signature(self, key: VerifyingKey) -> bool:
        if self.miner_signature is None:
            return False
        return key.verify(self.hash.encode(), self.miner_signature)

    def to_dict(self) -> dict:
        return {
            "header": self.header.to_dict(),
            "transactions": [tx.to_dict() for tx in self.transactions],
            "miner_signature": self.miner_signature.to_dict() if self.miner_signature else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Block":
        try:
            signature = (
                Signature.from_dict(data["miner_signature"])
                if data.get("miner_signature")
                else None
            )
            return cls(
                header=BlockHeader.from_dict(data["header"]),
                transactions=[Transaction.from_dict(tx) for tx in data["transactions"]],
                miner_signature=signature,
            )
        except (KeyError, TypeError) as exc:
            raise ValidationError(f"malformed block: {exc}") from exc


def make_genesis(chain_id: str, config_digest: str, difficulty_bits: float) -> Block:
    """The deterministic genesis block all nodes of a chain agree on."""
    header = BlockHeader(
        height=0,
        prev_hash="0" * 64,
        merkle_root=MerkleTree([]).root,
        timestamp=0.0,
        difficulty_bits=difficulty_bits,
        miner=f"genesis:{chain_id}:{config_digest}",
        nonce=0,
    )
    return Block(header=header, transactions=[])
