"""Gossiping miner/validator node on the simulated network.

Each federation tenant runs a node.  Nodes flood transactions and blocks to
their peers, maintain their own :class:`~repro.blockchain.chain.Blockchain`
replica, and produce blocks.

Block production follows the standard memoryless PoW model: with hashrate
``H`` (hashes/second) and difficulty ``d`` bits, the time to the node's next
valid block is exponential with rate ``H / expected_hashes(d)``.  Whenever
the head changes, the draw is restarted (the node now mines on the new
head).  In ``real`` PoW mode the winning block is additionally ground to a
genuine nonce so validation can check the hash; in ``simulated`` mode the
chain semantics are identical but the hash check is skipped.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.common.rng import SeededRng
from repro.crypto.signatures import SigningKey
from repro.simnet.network import Host, Message, Network
from repro.simnet.simulator import Event
from repro.blockchain.block import Block
from repro.blockchain.chain import Blockchain, ChainValidationError, KeyLookup
from repro.blockchain.config import BlockchainConfig
from repro.blockchain.contracts import ContractRegistry
from repro.blockchain.mempool import Mempool
from repro.blockchain.pow import expected_hashes
from repro.blockchain.transaction import Transaction

HeadListener = Callable[[Block], None]


class BlockchainNode(Host):
    """A mining/validating peer."""

    def __init__(self, network: Network, address: str, config: BlockchainConfig,
                 registry: ContractRegistry, rng: SeededRng,
                 key_lookup: Optional[KeyLookup] = None,
                 signing_key: Optional[SigningKey] = None,
                 hashrate: float = 1e6, mine: bool = True) -> None:
        super().__init__(network, address)
        self.chain = Blockchain(config, registry, key_lookup=key_lookup,
                                require_signatures=key_lookup is not None)
        self.mempool = Mempool()
        self.rng = rng.fork(f"node/{address}")
        self.signing_key = signing_key
        self.hashrate = hashrate
        self.mining_enabled = mine
        self.peers: list[str] = []
        self.blocks_mined = 0
        self.invalid_blocks_seen = 0
        self._seen_txs: set[str] = set()
        self._seen_blocks: set[str] = {self.chain.genesis.hash}
        self._requested_parents: set[str] = set()
        self._orphans: dict[str, Block] = {}
        self._mine_event: Optional[Event] = None
        self._head_listeners: list[HeadListener] = []
        #: Crash/rejoin state (fault plane).  A restarted node holds its
        #: mining until the head-sync handshake confirms it sits on the
        #: network's current chain, so a rejoin can never fork the
        #: monitored head from a stale tip.
        self.crashed = False
        self.crashes = 0
        self.resyncs = 0
        self._syncing = False
        self._sync_target: Optional[str] = None
        #: Light-client proof service.  Requests may name a transaction
        #: directly or carry application-level coordinates (e.g. a DRAMS
        #: ``correlation_id``/``entry_type`` pair); the optional resolver —
        #: installed by whoever deploys contracts on this chain — maps the
        #: latter onto a tx id without the node knowing contract schemas.
        self.tx_resolver: Optional[Callable[[dict], Optional[str]]] = None
        self.proofs_served = 0
        self.header_syncs_served = 0

    # -- wiring -------------------------------------------------------------

    def connect(self, peer_addresses: list[str]) -> None:
        """Set this node's gossip peers (excluding itself)."""
        self.peers = [p for p in peer_addresses if p != self.address]

    def on_head_change(self, listener: HeadListener) -> None:
        """Call ``listener(head_block)`` whenever the main-chain head moves."""
        self._head_listeners.append(listener)

    def start(self) -> None:
        """Begin mining (call after the network/peers are wired up)."""
        if self.mining_enabled:
            self._reschedule_mining()

    def stop(self) -> None:
        if self._mine_event is not None:
            self._mine_event.cancel()
            self._mine_event = None

    # -- crash / restart ------------------------------------------------------

    def crash(self) -> None:
        """Abrupt node failure: stop mining, drop off the network.

        The chain replica and mempool survive as the node's durable
        state (disk); what dies is liveness — gossip in flight toward
        this address is dropped by the fabric, and the Logging
        Interface's local submissions are journalled (accepted into the
        mempool, not gossiped) until restart.  Idempotent.
        """
        if self.crashed:
            return
        self.crashed = True
        self.crashes += 1
        self.stop()
        self.network.detach(self.address)

    def restart(self) -> None:
        """Rejoin the network: sync to the current head before mining.

        Re-attaches under a fresh incarnation, re-floods the journalled
        mempool (transactions submitted or displaced during the outage),
        and asks every peer for its head.  Mining stays parked until a
        peer's head is confirmed present in the local chain — either
        immediately (nothing happened while down) or after the existing
        parent-request backfill walks the gap — so the first block this
        node mines after an outage always extends the monitored chain,
        never a stale private tip.
        """
        if not self.crashed:
            return
        self.crashed = False
        self.network.attach(self)
        for tx in self.mempool.pending():
            self._gossip("bc_tx", tx.to_dict())
        if self.peers:
            self._syncing = True
            self.resyncs += 1
            self._sync_target = None
            for peer in self.peers:
                self.send(peer, "bc_head_request", {})
        elif self.mining_enabled:
            self._reschedule_mining()

    # -- client API ----------------------------------------------------------

    def submit_transaction(self, tx: Transaction) -> bool:
        """Local submission endpoint used by the Logging Interface."""
        if tx.tx_id in self._seen_txs:
            return False
        self._seen_txs.add(tx.tx_id)
        if not self.chain.validate_transaction(tx):
            return False
        tx.submitted_at = self.sim.now
        accepted = self.mempool.add(tx)
        tracer = self.network.telemetry
        if accepted and tracer is not None and tracer.current is not None:
            # Only transactions submitted under an active trace get a
            # mempool span — sweeps and ticks stay untraced.
            tracer.open_span(("chain.mempool", self.address, tx.tx_id),
                             "chain.mempool", self.address, category="chain",
                             attrs={"method": tx.method})
        if accepted and not self.crashed:
            self._gossip("bc_tx", tx.to_dict())
        # While crashed the mempool acts as the LI's write-ahead journal:
        # the transaction is queued durably and flooded at restart.
        return accepted

    # -- gossip ----------------------------------------------------------------

    def _gossip(self, kind: str, payload: dict, exclude: Optional[str] = None) -> None:
        for peer in self.peers:
            if peer == exclude:
                continue
            self.send(peer, kind, payload)

    def receive(self, message: Message) -> None:
        if message.kind == "bc_tx":
            self._handle_tx(message)
        elif message.kind == "bc_block":
            self._handle_block(message)
        elif message.kind == "bc_block_request":
            self._handle_block_request(message)
        elif message.kind == "bc_head_request":
            self._handle_head_request(message)
        elif message.kind == "bc_head":
            self._handle_head(message)
        elif message.kind == "bc_header_sync":
            self._handle_header_sync(message)
        elif message.kind == "bc_proof_request":
            self._handle_proof_request(message)

    def _handle_tx(self, message: Message) -> None:
        tx = Transaction.from_dict(message.payload)
        if tx.tx_id in self._seen_txs:
            return
        self._seen_txs.add(tx.tx_id)
        if not self.chain.validate_transaction(tx):
            return
        if self.mempool.add(tx):
            self._gossip("bc_tx", message.payload, exclude=message.src)

    def _handle_block(self, message: Message) -> None:
        block = Block.from_dict(message.payload)
        if block.hash in self._seen_blocks:
            return
        self._seen_blocks.add(block.hash)
        if not self.chain.has_block(block.header.prev_hash):
            # Orphan: park it and ask the sender for the missing parent
            # (deduplicated so concurrent gossip does not storm requests).
            self._orphans[block.header.prev_hash] = block
            self._seen_blocks.discard(block.hash)
            if block.header.prev_hash not in self._requested_parents:
                self._requested_parents.add(block.header.prev_hash)
                self.send(message.src, "bc_block_request",
                          {"hash": block.header.prev_hash})
            return
        # Relay the wire payload we already hold instead of re-serialising
        # the block (the gossip dict is content-identical either way).
        self._accept_block(block, relay_exclude=message.src,
                           payload=message.payload)

    def _handle_block_request(self, message: Message) -> None:
        block = self.chain.get_block(message.payload.get("hash", ""))
        if block is None:
            return
        self.send(message.src, "bc_block", block.to_dict())

    def _handle_head_request(self, message: Message) -> None:
        self.send(message.src, "bc_head",
                  {"hash": self.chain.head.hash, "height": self.chain.height})

    def _handle_head(self, message: Message) -> None:
        """A peer's head, answering our rejoin handshake.

        If we already hold it, we were never behind (or backfill has
        caught up) — sync is done.  Otherwise chase it through the
        ordinary parent-request path: the peer returns the head block,
        whose missing ancestry the orphan machinery walks hop by hop.
        """
        if not self._syncing:
            return
        head_hash = str(message.payload.get("hash", ""))
        if not head_hash:
            return
        if self.chain.has_block(head_hash):
            self._finish_sync()
            return
        self._sync_target = head_hash
        if head_hash not in self._requested_parents:
            self._requested_parents.add(head_hash)
            self.send(message.src, "bc_block_request", {"hash": head_hash})

    # -- light-client service --------------------------------------------------

    def _handle_header_sync(self, message: Message) -> None:
        """Serve a light client's locator with main-chain headers.

        The reply carries the headers above the highest locator hash still
        on our main chain plus our tip coordinates, so the client knows
        whether another round is needed (``limit`` bounds each reply).
        """
        locator = [str(h) for h in message.payload.get("locator", [])]
        limit = int(message.payload.get("limit", 64))
        headers = self.chain.headers_after(locator, max(1, min(limit, 512)))
        self.header_syncs_served += 1
        # The reply id is derived from the request id: light-client service
        # traffic must not advance the global id counter (see Host.send).
        self.send(message.src, "bc_headers", {
            "headers": [header.to_dict() for header in headers],
            "tip_hash": self.chain.head.hash,
            "tip_height": self.chain.height,
        }, msg_id=f"{message.msg_id}#headers")

    def _handle_proof_request(self, message: Message) -> None:
        """Serve an inclusion proof (plus the proven transaction).

        The client re-derives everything it trusts — the reply is pure
        evidence: the transaction bytes, the Merkle path binding them into
        a block body, and that block's header coordinates.  A request the
        node cannot resolve gets ``found: False`` with the request echo so
        the client can stop waiting.
        """
        payload = message.payload
        reply: dict = {"request_id": payload.get("request_id"), "found": False}
        tx_id = payload.get("tx_id")
        if not tx_id and self.tx_resolver is not None:
            tx_id = self.tx_resolver(payload)
        location = self.chain.tx_location(tx_id) if tx_id else None
        proof = self.chain.inclusion_proof(tx_id) if tx_id else None
        if location is not None and proof is not None:
            block = self.chain.get_block(location.block_hash)
            for tx in block.transactions:
                if tx.tx_id == tx_id:
                    reply.update({
                        "found": True,
                        "tx": tx.to_dict(),
                        "proof": proof.to_dict(),
                        "tree_size": len(block.transactions),
                        "header": block.header.to_dict(),
                    })
                    self.proofs_served += 1
                    break
        self.send(message.src, "bc_proof", reply, msg_id=f"{message.msg_id}#proof")

    def _finish_sync(self) -> None:
        self._syncing = False
        self._sync_target = None
        if self.mining_enabled:
            self._reschedule_mining()

    def _accept_block(self, block: Block, relay_exclude: Optional[str] = None,
                      payload: Optional[dict] = None) -> None:
        old_head = self.chain.head.hash
        self._requested_parents.discard(block.hash)
        try:
            self.chain.add_block(block)
        except ChainValidationError:
            self.invalid_blocks_seen += 1
            return
        self.mempool.remove_all(tx.tx_id for tx in block.transactions)
        tracer = self.network.telemetry
        if tracer is not None:
            # Non-strict: every block closes spans for its own txs only —
            # most were submitted at other nodes or outside any trace.
            for tx in block.transactions:
                tracer.close_span(("chain.mempool", self.address, tx.tx_id),
                                  "included",
                                  attrs={"height": block.header.height},
                                  strict=False)
        self._gossip("bc_block", payload if payload is not None else block.to_dict(),
                     exclude=relay_exclude)
        # Reconnect any orphan waiting on this block.
        child = self._orphans.pop(block.hash, None)
        if child is not None and child.hash not in self._seen_blocks:
            self._seen_blocks.add(child.hash)
            self._accept_block(child)
        if self._syncing and self._sync_target is not None and \
                self.chain.has_block(self._sync_target):
            # Rejoin backfill reached the peer head we were chasing.
            self._finish_sync()
        if self.chain.head.hash != old_head:
            # Re-inject transactions that a reorg displaced from the chain;
            # without this, logs confirmed on a losing fork vanish.
            for orphan in self.chain.take_orphaned_txs():
                if self.chain.validate_transaction(orphan):
                    self.mempool.add(orphan)
            for listener in self._head_listeners:
                listener(self.chain.head)
            if self.mining_enabled:
                self._reschedule_mining()

    # -- mining -----------------------------------------------------------------

    def _mining_rate(self) -> float:
        difficulty = self.chain.expected_difficulty(self.chain.head.hash)
        return self.hashrate / expected_hashes(difficulty)

    def _reschedule_mining(self) -> None:
        if self._mine_event is not None:
            self._mine_event.cancel()
            self._mine_event = None
        if self.crashed or self._syncing:
            # Down, or rejoining: mining on a possibly-stale head would
            # mint a private fork of the monitored chain.
            return
        rate = self._mining_rate()
        if rate <= 0:
            return
        delay = self.rng.expovariate(rate)
        self._mine_event = self.sim.schedule(delay, self._mine_block,
                                             label=f"mine:{self.address}")

    def _mine_block(self) -> None:
        self._mine_event = None
        txs = self.chain.collect_block_txs(self.mempool)
        block = self.chain.create_block(
            miner=self.address,
            transactions=txs,
            timestamp=self.sim.now,
            signing_key=self.signing_key,
        )
        self.blocks_mined += 1
        self._seen_blocks.add(block.hash)
        self._accept_block(block)
        # _accept_block reschedules on head change; if our own block somehow
        # lost fork choice, keep mining regardless.
        if self.mining_enabled and self._mine_event is None:
            self._reschedule_mining()
