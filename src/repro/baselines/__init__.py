"""Baseline monitors for comparison experiments.

:class:`CentralizedMonitor` implements the *same* four-point matching and
decision-correctness checks as DRAMS, but over a single log collector with
a classical database in the infrastructure tenant — no blockchain, no
replication.  Functionally it detects the same component attacks; the
difference the paper argues for is *resilience*: compromising the one
collector host silences the baseline entirely (and destroys the evidence),
whereas DRAMS keeps detecting as long as the chain's integrity holds.
Experiment E6 quantifies exactly that gap.
"""

from repro.baselines.central import (
    CentralizedMonitor,
    attach_centralized_monitoring,
)

__all__ = [
    "CentralizedMonitor",
    "attach_centralized_monitoring",
]
