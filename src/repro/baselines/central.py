"""Centralized log-monitoring baseline.

One collector host receives every probe's log entries, stores them in a
local database and runs the DRAMS matching algorithms in-process:

- request-leg / decision-leg hash matching,
- equivocation detection,
- timeout sweeps (in seconds — no blocks here),
- decision-correctness checks against the PRP's policies (it holds the
  plaintext, so no decryption round-trip is needed).

Being a single component, it is also a single point of failure:
:meth:`CentralizedMonitor.compromise` models an attacker who owns the
collector — incoming evidence is discarded and stored evidence scrubbed,
after which nothing is ever detected again.  There is no tamper-evidence:
the scrubbing itself is invisible (contrast with the chain, where even a
failed rewrite attempt leaves forked blocks behind).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.semantics import DecisionOracle
from repro.common.rng import SeededRng
from repro.drams.alerts import Alert, AlertBus, AlertType
from repro.drams.logs import EntryType, LogEntry
from repro.drams.probe import (
    ProbeAgent,
    attach_pep_probes,
    attach_plane_probes,
    follow_plane_membership,
)
from repro.federation.federation import Federation
from repro.accesscontrol.pdp_service import PdpService
from repro.accesscontrol.pep import PolicyEnforcementPoint
from repro.accesscontrol.plane import DecisionPlane, as_plane
from repro.accesscontrol.prp import PolicyRetrievalPoint
from repro.simnet.network import Host, Message, Network
from repro.storage.database import DatabaseConfig, DatabaseStore


class CentralizedMonitor(Host):
    """All-in-one log collector, matcher and analyser."""

    def __init__(self, network: Network, address: str, prp: PolicyRetrievalPoint,
                 rng: SeededRng, timeout_seconds: float = 10.0,
                 sweep_interval: float = 2.0,
                 db_config: Optional[DatabaseConfig] = None) -> None:
        super().__init__(network, address)
        self.prp = prp
        self.timeout_seconds = timeout_seconds
        self.sweep_interval = sweep_interval
        self.database = DatabaseStore(self.sim, rng, db_config, name="central-logs")
        self.alerts = AlertBus()
        self.records: dict[str, dict] = {}
        self.logs_received = 0
        self.logs_discarded = 0
        self.checked_decisions = 0
        self.compromised = False
        self._oracle: Optional[DecisionOracle] = None
        self._oracle_fingerprint = ""
        self._stop_sweep = None

    def start(self) -> None:
        if self._stop_sweep is None:
            self._stop_sweep = self.sim.every(self.sweep_interval, self.sweep,
                                              label="central-sweep")

    def stop(self) -> None:
        if self._stop_sweep is not None:
            self._stop_sweep()
            self._stop_sweep = None

    # -- compromise (the baseline's weak spot) -----------------------------------

    def compromise(self) -> None:
        """The attacker owns the collector: scrub evidence, go blind."""
        self.compromised = True
        self.records.clear()

    # -- ingestion -------------------------------------------------------------------

    def receive(self, message: Message) -> None:
        if message.kind != "drams_log":
            return
        if self.compromised:
            self.logs_discarded += 1
            return
        entry = LogEntry.from_dict(message.payload)
        self.logs_received += 1
        self._ingest(entry)

    def _ingest(self, entry: LogEntry) -> None:
        record = self.records.setdefault(entry.correlation_id, {
            "first_seen": self.sim.now,
            "entries": {},
            "alerted": set(),
            "complete": False,
        })
        existing = record["entries"].get(entry.entry_type)
        payload_hash = entry.payload_hash()
        if existing is not None:
            if existing["payload_hash"] != payload_hash:
                self._raise(record, AlertType.EQUIVOCATION, entry.correlation_id, {
                    "entry_type": entry.entry_type})
            return
        record["entries"][entry.entry_type] = {
            "payload_hash": payload_hash,
            "payload": entry.payload,
            "component": entry.component,
        }
        self.database.write(f"{entry.correlation_id}:{entry.entry_type}",
                            entry.to_dict())
        self._match_leg(record, entry.correlation_id, EntryType.REQUEST_LEG,
                        AlertType.REQUEST_MISMATCH)
        self._match_leg(record, entry.correlation_id, EntryType.DECISION_LEG,
                        AlertType.DECISION_MISMATCH)
        if entry.entry_type in (EntryType.PDP_OUT, EntryType.PDP_IN, EntryType.PEP_IN):
            self._check_decision(record, entry.correlation_id)
        entries = record["entries"]
        if not record["complete"] and all(t in entries for t in EntryType.ALL):
            record["complete"] = True

    # -- matching ---------------------------------------------------------------------

    def _match_leg(self, record: dict, correlation_id: str,
                   leg: tuple[str, str], alert_type: AlertType) -> None:
        first, second = leg
        entries = record["entries"]
        if first in entries and second in entries:
            if entries[first]["payload_hash"] != entries[second]["payload_hash"]:
                self._raise(record, alert_type, correlation_id,
                            {"leg": [first, second]})

    def _check_decision(self, record: dict, correlation_id: str) -> None:
        entries = record["entries"]
        decision_entry = entries.get(EntryType.PDP_OUT)
        request_entry = entries.get(EntryType.PDP_IN) or entries.get(EntryType.PEP_IN)
        if decision_entry is None or request_entry is None:
            return
        if record.get("decision_checked"):
            return
        record["decision_checked"] = True
        self.checked_decisions += 1
        oracle = self._current_oracle()
        if oracle is None:
            return
        expected = oracle.expected_decision(request_entry["payload"]["content"])
        observed = decision_entry["payload"]["decision"]
        if expected != observed:
            self._raise(record, AlertType.INCORRECT_DECISION, correlation_id, {
                "expected": expected, "observed": observed})

    def _current_oracle(self) -> Optional[DecisionOracle]:
        if self.prp.version_count() == 0:
            return None
        version = self.prp.current()
        if self._oracle is None or self._oracle_fingerprint != version.fingerprint:
            self._oracle = DecisionOracle(version.document)
            self._oracle_fingerprint = version.fingerprint
        return self._oracle

    # -- timeout sweep ------------------------------------------------------------------

    def sweep(self) -> int:
        if self.compromised:
            return 0
        flagged = 0
        for correlation_id, record in self.records.items():
            if record["complete"] or AlertType.MISSING_LOG.value in record["alerted"]:
                continue
            if self.sim.now - record["first_seen"] >= self.timeout_seconds:
                missing = [t for t in EntryType.ALL if t not in record["entries"]]
                if missing:
                    self._raise(record, AlertType.MISSING_LOG, correlation_id,
                                {"missing": missing})
                    flagged += 1
                else:
                    record["alerted"].add(AlertType.MISSING_LOG.value)
        return flagged

    # -- alerts -----------------------------------------------------------------------------

    def _raise(self, record: dict, alert_type: AlertType, correlation_id: str,
               details: dict) -> None:
        if alert_type.value in record["alerted"]:
            return
        record["alerted"].add(alert_type.value)
        self.alerts.publish(Alert(
            alert_type=alert_type,
            correlation_id=correlation_id,
            details=details,
            block_height=0,
            raised_at=self.sim.now,
        ))


def attach_centralized_monitoring(federation: Federation,
                                  plane: "DecisionPlane | PdpService",
                                  peps: dict[str, PolicyEnforcementPoint],
                                  prp: PolicyRetrievalPoint,
                                  timeout_seconds: float = 10.0) -> tuple[
                                      CentralizedMonitor, dict[str, ProbeAgent]]:
    """Deploy the baseline: one collector in the infrastructure tenant.

    Reuses the same probe implementation as DRAMS — only the destination
    differs — so any detection difference is attributable to the
    monitoring architecture, not the instrumentation.  Accepts the
    federation's decision plane (probes attach to every PDP replica) or,
    for backwards compatibility, a bare :class:`PdpService`.
    """
    infra = federation.infrastructure_tenant
    monitor = CentralizedMonitor(
        federation.network, infra.address("central-monitor"), prp,
        federation.rng, timeout_seconds=timeout_seconds)
    infra.register_host(monitor.address)
    probes: dict[str, ProbeAgent] = {}
    for tenant_name, pep in peps.items():
        probes[f"pep:{tenant_name}"] = attach_pep_probes(pep, monitor.address)
    plane = as_plane(plane)
    probes.update(attach_plane_probes(plane, infra.name, monitor.address))
    # Coverage follows elastic membership through the same protocol DRAMS
    # uses: probe new shards before their first request, release drained
    # ones once quiescent.
    follow_plane_membership(plane, probes, infra.name, monitor.address)
    federation.finalize_topology()
    return monitor, probes
