"""Header-only chain tracking.

A :class:`HeaderClient` holds the main chain as a list of validated
:class:`~repro.blockchain.block.BlockHeader` objects — no bodies, no
contract state.  It syncs from any full node over the ``bc_header_sync``
protocol: the client sends a Bitcoin-style *locator* (recent branch
hashes, then exponentially spaced ones back to genesis), the server
replies with the main-chain headers above the highest locator hash it
recognises, and the client pages until it reaches the served tip.

Every received header is validated the way a full node validates one,
minus the body checks it cannot perform:

- parent link and height continuity against the already-verified branch,
- non-decreasing timestamps,
- the difficulty retarget schedule, replicated over headers alone,
- in ``real`` PoW mode, that the header hash meets its work target.

Batches extending a stale branch are adopted only if their cumulative
work beats the current one (total-work fork choice, ties to the lower tip
hash — the same rule full nodes apply), so a light client follows reorgs
without ever trusting the server's word for anything but data
availability.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.blockchain.block import BlockHeader, make_genesis
from repro.blockchain.config import BlockchainConfig
from repro.blockchain.pow import meets_target, retarget
from repro.crypto.hashing import hash_value
from repro.lightclient.sideband import SidebandHost
from repro.simnet.network import Message, Network


class HeaderClient(SidebandHost):
    """Tracks the chain's main branch from headers served by a full node."""

    #: Dense locator prefix before the spacing starts doubling.
    LOCATOR_DENSE = 8
    #: Headers requested per sync round.
    BATCH = 64

    def __init__(self, network: Network, address: str,
                 config: BlockchainConfig, server: str) -> None:
        super().__init__(network, address)
        self.config = config
        self.server = server
        genesis = make_genesis(config.chain_id, hash_value(config.to_dict()),
                               config.difficulty_bits)
        #: Every validated header ever accepted, by hash (reorged-away
        #: headers stay — they were valid when seen and are cheap).
        self.headers: dict[str, BlockHeader] = {genesis.hash: genesis.header}
        #: Main-branch hashes, indexed by height.
        self._branch: list[str] = [genesis.hash]
        #: Cumulative work at each known header.
        self._work: dict[str, float] = {genesis.hash: 0.0}
        self.headers_validated = 0
        self.headers_rejected = 0
        #: Cryptographic hash evaluations spent on validation — the cost
        #: metric the E16 bench compares against full-node replay.
        self.hashes_verified = 0
        self.sync_rounds = 0
        self.reorgs = 0
        self._inflight = False
        self._inflight_stalls = 0

    # -- inspection -----------------------------------------------------------

    @property
    def head(self) -> BlockHeader:
        return self.headers[self._branch[-1]]

    @property
    def height(self) -> int:
        return len(self._branch) - 1

    def header_at(self, height: int) -> Optional[BlockHeader]:
        if 0 <= height < len(self._branch):
            return self.headers[self._branch[height]]
        return None

    def header_for(self, block_hash: str) -> Optional[BlockHeader]:
        """The header at ``block_hash`` iff it sits on the verified branch."""
        header = self.headers.get(block_hash)
        if header is None:
            return None
        if header.height < len(self._branch) and self._branch[header.height] == block_hash:
            return header
        return None

    def confirmations_of(self, block_hash: str) -> int:
        """Branch depth of ``block_hash`` (0 if absent or reorged away)."""
        header = self.header_for(block_hash)
        if header is None:
            return 0
        return self.height - header.height + 1

    # -- sync protocol ---------------------------------------------------------

    def locator(self) -> list[str]:
        """Branch hashes newest-first: dense near the tip, then doubling."""
        hashes: list[str] = []
        index = len(self._branch) - 1
        step = 1
        while index > 0:
            hashes.append(self._branch[index])
            if len(hashes) >= self.LOCATOR_DENSE:
                step *= 2
            index -= step
        hashes.append(self._branch[0])
        return hashes

    def sync(self) -> None:
        """Request the next header batch (no-op while a round is in flight).

        A crashed server or partitioned link can swallow the request or
        the reply; one lost round must not wedge the client, so after two
        stalled cadence ticks the in-flight guard yields and the request
        is reissued.
        """
        if self._inflight:
            self._inflight_stalls += 1
            if self._inflight_stalls < 2:
                return
        self._inflight = True
        self._inflight_stalls = 0
        self.sync_rounds += 1
        self.send(self.server, "bc_header_sync",
                  {"locator": self.locator(), "limit": self.BATCH})

    def receive(self, message: Message) -> None:
        if message.kind != "bc_headers":
            return
        self._inflight = False
        self._inflight_stalls = 0
        batch = [BlockHeader.from_dict(data)
                 for data in message.payload.get("headers", [])]
        accepted = self._ingest(batch)
        tip_height = int(message.payload.get("tip_height", 0))
        if accepted and tip_height > self.height:
            # Page until we reach the tip the server advertised.
            self.sync()

    # -- validation ------------------------------------------------------------

    def _expected_difficulty(self, parent: BlockHeader,
                             lookup: Callable[[str], BlockHeader]) -> float:
        """Replicates ``Blockchain.expected_difficulty`` over headers only."""
        window = self.config.retarget_window
        next_height = parent.height + 1
        if window == 0 or next_height % window != 0 or next_height < window:
            return parent.difficulty_bits
        cursor = parent
        for _ in range(window - 1):
            cursor = lookup(cursor.prev_hash)
        elapsed = parent.timestamp - cursor.timestamp
        actual_interval = elapsed / max(1, window - 1)
        return retarget(parent.difficulty_bits, actual_interval,
                        self.config.target_block_interval)

    def _ingest(self, batch: list[BlockHeader]) -> bool:
        """Validate a served batch and adopt it if it wins fork choice."""
        if not batch:
            return False
        anchor_height = batch[0].height - 1
        if not 0 <= anchor_height < len(self._branch):
            self.headers_rejected += len(batch)
            return False
        if self._branch[anchor_height] != batch[0].prev_hash:
            # The server anchored on a branch we no longer follow; the
            # next round's locator will renegotiate the fork point.
            self.headers_rejected += len(batch)
            return False

        new_headers: dict[str, BlockHeader] = {}

        def lookup(block_hash: str) -> BlockHeader:
            found = new_headers.get(block_hash)
            return found if found is not None else self.headers[block_hash]

        candidate: list[str] = []
        parent_hash = batch[0].prev_hash
        parent = self.headers[parent_hash]
        work = self._work[parent_hash]
        for header in batch:
            if (header.prev_hash != parent_hash
                    or header.height != parent.height + 1
                    or header.timestamp < parent.timestamp):
                self.headers_rejected += len(batch)
                return False
            expected_bits = self._expected_difficulty(parent, lookup)
            if abs(header.difficulty_bits - expected_bits) > 1e-9:
                self.headers_rejected += len(batch)
                return False
            block_hash = header.block_hash()
            self.hashes_verified += 1
            if self.config.pow_mode == "real" and not meets_target(
                    block_hash, header.difficulty_bits):
                self.headers_rejected += len(batch)
                return False
            work += 2.0 ** header.difficulty_bits
            new_headers[block_hash] = header
            candidate.append(block_hash)
            parent_hash, parent = block_hash, header

        tip_hash = self._branch[-1]
        current_work = self._work[tip_hash]
        if work < current_work or (work == current_work
                                   and candidate[-1] >= tip_hash):
            return False
        if anchor_height < self.height:
            self.reorgs += 1
        self.headers.update(new_headers)
        cumulative = self._work[batch[0].prev_hash]
        for block_hash in candidate:
            cumulative += 2.0 ** self.headers[block_hash].difficulty_bits
            self._work[block_hash] = cumulative
        self._branch = self._branch[:anchor_height + 1] + candidate
        self.headers_validated += len(candidate)
        return True
