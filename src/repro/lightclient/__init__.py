"""Light-client monitoring: sublinear verifiers over the DRAMS chain.

Every Analyser and auditor in the reproduction used to be a full node —
it read the whole chain to check any one decision.  This package provides
the sublinear alternative the "millions of users" north star needs:

- :mod:`repro.lightclient.headers` — a :class:`HeaderClient` that tracks
  the chain as *headers only*, validating parent links, timestamps, the
  difficulty schedule and (in real PoW mode) the work target, with
  total-work fork choice over header batches served by any blockchain
  node (``bc_header_sync``);
- :mod:`repro.lightclient.receipts` — :class:`DecisionReceipt`, a
  self-contained evidence object (transaction, Merkle inclusion proof,
  block header, policy ``(version, fingerprint)`` stamp) that verifies
  *offline* against a single trusted header in O(log block-size) hashes;
- :mod:`repro.lightclient.sampling` — :class:`SamplingAnalyser`, an
  Analyser mode that audits a seeded hash-sample of correlations with a
  closed-form detection-probability bound (``1 - (1 - p)^k``);
- :mod:`repro.lightclient.consumer` — :class:`LightProbeConsumer`,
  per-tenant auditors holding headers + receipts only, fed by their own
  PEP's enforcement hook and the ``bc_proof_request`` service.

All light-client traffic is *sideband* (:mod:`repro.lightclient.sideband`):
constant-latency links and namespaced message ids, so attaching observers
leaves the monitored system bit-identical — the differential arm of
``bench_e16_lightclient.py`` pins exactly that.
"""

from repro.lightclient.consumer import LightProbeConsumer
from repro.lightclient.headers import HeaderClient
from repro.lightclient.receipts import (
    DecisionReceipt,
    ReceiptVerification,
    monitor_tx_resolver,
)
from repro.lightclient.sampling import (
    SamplingAnalyser,
    detection_probability,
    sample_admit,
)
from repro.lightclient.sideband import SidebandHost, sideband_link

__all__ = [
    "DecisionReceipt",
    "HeaderClient",
    "LightProbeConsumer",
    "ReceiptVerification",
    "SamplingAnalyser",
    "SidebandHost",
    "detection_probability",
    "monitor_tx_resolver",
    "sample_admit",
    "sideband_link",
]
