"""Sideband hosts: observers that provably do not perturb the observed.

The differential acceptance bar for light clients is strict: the full
DRAMS stack must stay *bit-identical* — same decisions, same alerts, same
chain head hash — with auditors attached.  Two shared global streams
could betray that:

- **the latency RNG**: LAN/WAN profiles draw from the network's seeded
  stream per message, so one extra message shifts every later draw;
- **the id counter**: minted ids (``new_id``) come from one process-wide
  counter that also feeds transaction ids, which are hashed into blocks.

:class:`SidebandHost` therefore namespaces its message ids from a local
counter, and :func:`sideband_link` pins its links to constant-latency
models (which sample nothing).  Service replies complete the loop by
deriving their ids from the request id (see
``BlockchainNode._handle_header_sync`` / ``_handle_proof_request``).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.simnet.latency import ConstantLatency
from repro.simnet.network import Host, Message, Network

#: One-way delay for light-client links: LAN-ish, deterministic.
SIDEBAND_DELAY = 0.002


class SidebandHost(Host):
    """A host whose traffic stays off the shared id and entropy streams."""

    def __init__(self, network: Network, address: str) -> None:
        super().__init__(network, address)
        self._msg_seq = 0

    def send(self, dst: str, kind: str, payload: Any,
             msg_id: Optional[str] = None) -> Optional[Message]:
        if msg_id is None:
            self._msg_seq += 1
            msg_id = f"lc:{self.address}:{self._msg_seq}"
        return super().send(dst, kind, payload, msg_id=msg_id)


def sideband_link(network: Network, client: str, server: str,
                  delay: float = SIDEBAND_DELAY) -> None:
    """Wire a constant-latency (RNG-free) link pair for sideband traffic."""
    network.set_latency(client, server, ConstantLatency(delay), symmetric=True)
