"""Statistical auditing: the sampling Analyser and its detection bound.

Exhaustive decision auditing re-derives every decision on chain — O(n)
oracle evaluations for n monitored decisions.  Data-availability sampling
(cf. PeerDAS in the Ethereum consensus specs) shows the alternative: audit
a random fraction ``p`` and accept a quantified detection probability.

The sample is a *seeded hash predicate* over the correlation id, so

- it is deterministic per (seed, rate): every replica of the Analyser —
  and the bench re-deriving the sample offline — agrees on the audit set
  without coordination;
- it is uniform: SHA-256 output bits are unbiased, so each correlation is
  audited independently with probability ``p``;
- it is unpredictable to an adversary who does not know the seed, which
  is what makes the bound adversarial, not just average-case.

An attacker injecting ``k`` violating decisions evades detection only if
*all k* fall outside the sample:

    P(detect) = 1 - (1 - p) ** k

:func:`detection_probability` is that closed form;
:class:`SamplingAnalyser` exposes it in its stats and the E16 bench
validates the empirical detection rate against it over many seeds.
"""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.crypto.hashing import sha256_hex
from repro.drams.analyser import Analyser

_SAMPLE_DOMAIN = "drams-sample"
#: Hash-prefix width used as the sampling variate: 48 bits is plenty of
#: resolution for any practical rate while staying in exact float range.
_PRECISION_BITS = 48


def sample_admit(seed: int | str, rate: float, correlation_id: str) -> bool:
    """Deterministic seeded predicate: audit this correlation?"""
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    digest = sha256_hex(f"{_SAMPLE_DOMAIN}|{seed}|{correlation_id}".encode())
    variate = int(digest[: _PRECISION_BITS // 4], 16)
    return variate < rate * (1 << _PRECISION_BITS)


def detection_probability(rate: float, violations: int) -> float:
    """P(at least one of ``violations`` sampled) at sampling ``rate``."""
    if violations <= 0:
        return 0.0
    return 1.0 - (1.0 - rate) ** violations


class SamplingAnalyser(Analyser):
    """An Analyser that audits a seeded hash-sample of correlations.

    Drop-in subclass: construction, sweeping and violation reporting are
    inherited; only the admission hook changes.  Churn-claim audits stay
    exhaustive — they are alert-driven and rare, so sampling them would
    save nothing and weaken the policy-provenance story.
    """

    def __init__(self, *args, sample_rate: float = 0.1,
                 sample_seed: int | str = 0, **kwargs) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ValidationError(
                f"sample_rate must be in (0, 1], got {sample_rate}")
        super().__init__(*args, **kwargs)
        self.sample_rate = sample_rate
        self.sample_seed = sample_seed
        self._sampled_in: set[str] = set()
        self._sampled_out: set[str] = set()

    def _admit(self, correlation_id: str) -> bool:
        if sample_admit(self.sample_seed, self.sample_rate, correlation_id):
            self._sampled_in.add(correlation_id)
            return True
        self._sampled_out.add(correlation_id)
        return False

    def sampling_stats(self) -> dict:
        """Observed sample plus the closed-form detection bound."""
        seen = len(self._sampled_in) + len(self._sampled_out)
        return {
            "sample_rate": self.sample_rate,
            "sample_seed": str(self.sample_seed),
            "correlations_seen": seen,
            "sampled_in": len(self._sampled_in),
            "sampled_out": len(self._sampled_out),
            "observed_fraction": (len(self._sampled_in) / seen) if seen else 0.0,
            "detection_probability": {
                str(k): detection_probability(self.sample_rate, k)
                for k in (1, 2, 5, 10, 20, 50)
            },
        }
