"""Decision receipts: per-decision evidence a header alone can check.

A :class:`DecisionReceipt` packages everything an auditor needs to show
"my decision is on-chain and matches policy X" without holding the chain:

- the ``record_log`` transaction that carried the (encrypted) log entry,
- the Merkle inclusion proof binding that transaction into a block body,
- that block's header, and
- the policy ``(version, fingerprint)`` stamp the decision declared.

:meth:`DecisionReceipt.verify` is *offline*: its only trust input is a
header the verifier already validated (via
:class:`~repro.lightclient.headers.HeaderClient` or any other channel).
It recomputes the transaction's content hash, walks the hardened Merkle
path (``leaf_index`` bound, ``tree_size`` pinned), matches the header,
and — given the federation key — decrypts the ciphertext and checks the
plaintext against the on-chain hash commitment and the declared policy
stamp.  Total cost: ``3 + log2(block size)`` hash evaluations, against
the O(chain) replay a full-node audit performs.

Receipts serialize to plain dicts (:meth:`to_dict`/:meth:`from_dict`), so
a tenant can fetch one, archive it as JSON, and re-verify it years later
against nothing but a header.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.blockchain.block import BlockHeader
from repro.blockchain.chain import Blockchain
from repro.blockchain.transaction import Transaction
from repro.common.errors import CryptoError, ValidationError
from repro.common.serialization import from_json
from repro.crypto.hashing import sha256_hex
from repro.crypto.merkle import MerkleProof
from repro.crypto.symmetric import EncryptedBlob, SymmetricKey
from repro.drams.contract import CONTRACT_NAME


@dataclass
class ReceiptVerification:
    """Outcome of an offline receipt check."""

    ok: bool
    reason: str
    #: Cryptographic hash evaluations this check spent (bench metric).
    hashes_verified: int
    #: Decrypted log payload, when a federation key was supplied and the
    #: ciphertext checked out.
    payload: Optional[dict] = None


@dataclass
class DecisionReceipt:
    """Self-contained, offline-verifiable proof of one monitored log entry."""

    correlation_id: str
    entry_type: str
    tx: Transaction
    proof: MerkleProof
    header: BlockHeader
    tree_size: int
    #: Decrypted log payload; populated by a successful :meth:`verify`
    #: with the federation key (never trusted as an input).
    payload: Optional[dict] = None

    # -- stamps ----------------------------------------------------------------

    @property
    def block_hash(self) -> str:
        return self.header.block_hash()

    @property
    def policy_version(self) -> int:
        return int(self.tx.args.get("policy_version", 0))

    @property
    def policy_fingerprint(self) -> str:
        return str(self.tx.args.get("policy_fingerprint", ""))

    @property
    def policy_stamp(self) -> tuple[int, str]:
        """The declared ``(version, fingerprint)`` provenance of the decision."""
        return (self.policy_version, self.policy_fingerprint)

    # -- verification ----------------------------------------------------------

    def verify(self, trusted_header: Optional[BlockHeader],
               federation_key: Optional[SymmetricKey] = None,
               expected_stamp: Optional[tuple[int, str]] = None,
               ) -> ReceiptVerification:
        """Check the receipt against a header the caller already trusts.

        Verification never takes the receipt's word for anything
        derivable: the Merkle leaf is recomputed from the transaction
        bytes, the root from the hardened proof path, the header hash
        from the header fields, and (with ``federation_key``) the payload
        commitment from the decrypted plaintext.  ``expected_stamp``
        additionally pins the policy provenance the auditor expects.
        """
        hashes = 0
        args = self.tx.args
        if self.tx.contract != CONTRACT_NAME or self.tx.method != "record_log":
            return ReceiptVerification(False, "not-a-monitor-log-tx", hashes)
        if (args.get("correlation_id") != self.correlation_id
                or args.get("entry_type") != self.entry_type):
            return ReceiptVerification(False, "tx-coordinates-mismatch", hashes)
        hashes += 1  # leaf: the transaction's content hash
        if self.proof.leaf != self.tx.content_hash():
            return ReceiptVerification(False, "leaf-commitment-mismatch", hashes)
        hashes += len(self.proof.path)
        if not self.proof.verify(self.header.merkle_root, tree_size=self.tree_size):
            return ReceiptVerification(False, "inclusion-proof-invalid", hashes)
        hashes += 1  # header hash vs the trusted chain view
        if (trusted_header is None
                or self.header.block_hash() != trusted_header.block_hash()):
            return ReceiptVerification(False, "header-not-on-verified-chain", hashes)
        payload: Optional[dict] = None
        if federation_key is not None:
            ciphertext = args.get("ciphertext")
            if not isinstance(ciphertext, dict):
                return ReceiptVerification(False, "ciphertext-missing", hashes)
            try:
                plaintext = federation_key.decrypt(EncryptedBlob.from_dict(ciphertext))
            except (CryptoError, ValidationError):
                return ReceiptVerification(False, "ciphertext-tampered", hashes)
            hashes += 1  # plaintext vs the on-chain hash commitment
            if sha256_hex(plaintext) != args.get("payload_hash"):
                return ReceiptVerification(False, "payload-commitment-mismatch", hashes)
            payload = from_json(plaintext.decode("utf-8"))
            declared = payload.get("policy_fingerprint", "")
            if declared or self.policy_fingerprint:
                stamp = (int(payload.get("policy_version", 0)), declared)
                if stamp != self.policy_stamp:
                    return ReceiptVerification(False, "policy-stamp-mismatch", hashes)
            self.payload = payload
        if expected_stamp is not None and self.policy_stamp != tuple(expected_stamp):
            return ReceiptVerification(False, "unexpected-policy-stamp", hashes)
        return ReceiptVerification(True, "ok", hashes, payload)

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "correlation_id": self.correlation_id,
            "entry_type": self.entry_type,
            "tx": self.tx.to_dict(),
            "proof": self.proof.to_dict(),
            "header": self.header.to_dict(),
            "tree_size": self.tree_size,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DecisionReceipt":
        try:
            return cls(
                correlation_id=data["correlation_id"],
                entry_type=data["entry_type"],
                tx=Transaction.from_dict(data["tx"]),
                proof=MerkleProof.from_dict(data["proof"]),
                header=BlockHeader.from_dict(data["header"]),
                tree_size=int(data["tree_size"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed decision receipt: {exc}") from exc


def monitor_tx_resolver(chain: Blockchain) -> Callable[[dict], Optional[str]]:
    """Resolver mapping monitor-contract coordinates to transaction ids.

    Installed as ``BlockchainNode.tx_resolver`` so ``bc_proof_request``
    messages may name a ``(correlation_id, entry_type)`` pair — the only
    coordinates a PEP-side auditor naturally knows — instead of a tx id.
    Resolution reads the record's stored ``tx_id`` stamp, so it is O(1),
    not a chain scan.
    """

    def resolve(payload: dict) -> Optional[str]:
        correlation_id = payload.get("correlation_id")
        entry_type = payload.get("entry_type")
        if not correlation_id or not entry_type:
            return None
        state: dict[str, Any] = chain.state_of(CONTRACT_NAME)
        record = state.get("records", {}).get(correlation_id)
        if record is None:
            return None
        entry = record.get("entries", {}).get(entry_type)
        if entry is None:
            return None
        return entry.get("tx_id")

    return resolve
