"""Light probe consumers: per-tenant auditors holding headers + receipts.

A :class:`LightProbeConsumer` is the paper's "any federation party can
audit access decisions" made cheap: it watches its own PEP's enforced
decisions (via the ``on_enforce`` hook), asks a full node for a decision
receipt per correlation (``bc_proof_request``), and verifies each receipt
offline against its :class:`~repro.lightclient.headers.HeaderClient`'s
validated header chain.  It never holds a block body or contract state.

Receipts for transactions that are not yet mined come back ``found:
False`` and are retried on the next :meth:`sweep`; receipts whose block
the header client has not synced yet (or that sit shallower than
``min_confirmations``) are parked and re-verified once the headers catch
up — so under partitions and node crashes the consumer simply lags and
recovers, which is exactly what the E16 chaos arm pins.
"""

from __future__ import annotations

from typing import Optional

from repro.accesscontrol.pep import PolicyEnforcementPoint
from repro.blockchain.block import BlockHeader
from repro.blockchain.transaction import Transaction
from repro.common.errors import ValidationError
from repro.crypto.merkle import MerkleProof
from repro.crypto.symmetric import SymmetricKey
from repro.drams.logs import EntryType
from repro.lightclient.headers import HeaderClient
from repro.lightclient.receipts import DecisionReceipt
from repro.lightclient.sideband import SidebandHost
from repro.simnet.network import Message, Network


class LightProbeConsumer(SidebandHost):
    """An auditor that verifies its tenant's decisions from headers alone."""

    def __init__(self, network: Network, address: str,
                 header_client: HeaderClient, proof_server: str,
                 federation_key: Optional[SymmetricKey] = None,
                 entry_type: str = EntryType.PDP_OUT,
                 min_confirmations: int = 1) -> None:
        super().__init__(network, address)
        self.header_client = header_client
        self.proof_server = proof_server
        self.federation_key = federation_key
        self.entry_type = entry_type
        self.min_confirmations = min_confirmations
        #: Accepted receipts by correlation id — the auditor's archive.
        self.receipts: dict[str, DecisionReceipt] = {}
        #: Correlations awaiting a servable proof (tx not mined yet, or
        #: the reply got lost to a partition/crash).
        self._awaiting: dict[str, None] = {}
        #: Fetched receipts waiting for header sync / confirmation depth.
        self._parked: dict[str, DecisionReceipt] = {}
        #: Sweeps a parked receipt's block has spent off the verified
        #: branch; after two it is treated as reorged away and re-fetched.
        self._parked_age: dict[str, int] = {}
        self.receipts_requested = 0
        self.receipts_accepted = 0
        self.receipts_rejected = 0
        #: ``(correlation_id, reason)`` for every rejection (bench audit).
        self.rejections: list[tuple[str, str]] = []
        #: Hash evaluations spent verifying receipts (excludes the header
        #: client's own sync cost, reported separately).
        self.hashes_verified = 0

    # -- wiring ----------------------------------------------------------------

    def attach_pep(self, pep: PolicyEnforcementPoint) -> None:
        """Audit every decision this PEP enforces, as it enforces it."""
        pep.on_enforce.append(
            lambda request, decision: self.watch(request.correlation()))

    # -- audit flow ------------------------------------------------------------

    def watch(self, correlation_id: str) -> None:
        """Queue a correlation for receipt fetch + verification."""
        if correlation_id in self.receipts or correlation_id in self._parked:
            return
        if correlation_id not in self._awaiting:
            tracer = self.network.telemetry
            if tracer is not None:
                # Sideband leg of the decision trace: watch → accept/reject.
                tracer.open_span(("lc.audit", self.address, correlation_id),
                                 "lc.audit", self.address,
                                 parent=tracer.context_for(correlation_id),
                                 category="sideband")
            self._awaiting[correlation_id] = None
            self._fetch(correlation_id)

    def sweep(self) -> None:
        """Retry unanswered fetches and re-verify parked receipts."""
        for correlation_id, receipt in list(self._parked.items()):
            self._verify(correlation_id, receipt)
        for correlation_id, receipt in list(self._parked.items()):
            if self.header_client.header_for(receipt.block_hash) is not None:
                continue  # just shallow; confirmations will accrue
            age = self._parked_age.get(correlation_id, 0) + 1
            if age >= 2:
                # The receipt's block stayed off the verified branch for
                # two sweeps: treat it as reorged away and re-fetch — the
                # server serves the winning branch's inclusion proof.
                self._parked.pop(correlation_id, None)
                self._parked_age.pop(correlation_id, None)
                self._awaiting[correlation_id] = None
            else:
                self._parked_age[correlation_id] = age
        for correlation_id in list(self._awaiting):
            self._fetch(correlation_id)

    @property
    def outstanding(self) -> int:
        """Watched correlations not yet accepted or rejected."""
        return len(self._awaiting) + len(self._parked)

    def _fetch(self, correlation_id: str) -> None:
        self.receipts_requested += 1
        self.send(self.proof_server, "bc_proof_request", {
            "request_id": correlation_id,
            "correlation_id": correlation_id,
            "entry_type": self.entry_type,
        })

    def receive(self, message: Message) -> None:
        if message.kind != "bc_proof":
            return
        payload = message.payload
        correlation_id = payload.get("request_id")
        if not correlation_id or correlation_id not in self._awaiting:
            return
        if not payload.get("found"):
            return  # not mined yet; the sweep retries
        try:
            receipt = DecisionReceipt(
                correlation_id=correlation_id,
                entry_type=self.entry_type,
                tx=Transaction.from_dict(payload["tx"]),
                proof=MerkleProof.from_dict(payload["proof"]),
                header=BlockHeader.from_dict(payload["header"]),
                tree_size=int(payload["tree_size"]),
            )
        except (KeyError, TypeError, ValueError, ValidationError):
            self._reject(correlation_id, "malformed-proof-reply")
            return
        self._awaiting.pop(correlation_id, None)
        self._verify(correlation_id, receipt)

    def _verify(self, correlation_id: str, receipt: DecisionReceipt) -> None:
        trusted = self.header_client.header_for(receipt.block_hash)
        if (trusted is None or self.header_client.confirmations_of(
                receipt.block_hash) < self.min_confirmations):
            # Headers lag the served chain (or the block was reorged
            # away); park and re-verify after the next sync.  A reorged
            # block's receipt re-fetches via the awaiting path once the
            # park ages out — the server will serve the winning branch.
            self._parked[correlation_id] = receipt
            if trusted is not None:
                self._parked_age.pop(correlation_id, None)
            return
        self._parked.pop(correlation_id, None)
        self._parked_age.pop(correlation_id, None)
        result = receipt.verify(trusted, federation_key=self.federation_key)
        self.hashes_verified += result.hashes_verified
        if result.ok:
            self.receipts[correlation_id] = receipt
            self.receipts_accepted += 1
            tracer = self.network.telemetry
            if tracer is not None:
                tracer.close_span(("lc.audit", self.address, correlation_id),
                                  "accepted", strict=False)
        else:
            self._reject(correlation_id, result.reason)

    def _reject(self, correlation_id: str, reason: str) -> None:
        self._awaiting.pop(correlation_id, None)
        self._parked.pop(correlation_id, None)
        self._parked_age.pop(correlation_id, None)
        self.receipts_rejected += 1
        self.rejections.append((correlation_id, reason))
        tracer = self.network.telemetry
        if tracer is not None:
            tracer.close_span(("lc.audit", self.address, correlation_id),
                              f"rejected:{reason}", strict=False)

    # -- reporting -------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "requested": self.receipts_requested,
            "accepted": self.receipts_accepted,
            "rejected": self.receipts_rejected,
            "outstanding": self.outstanding,
            "hashes_verified": self.hashes_verified,
            "headers_validated": self.header_client.headers_validated,
            "header_height": self.header_client.height,
            "header_reorgs": self.header_client.reorgs,
        }
