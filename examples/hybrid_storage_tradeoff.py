"""Hybrid database+blockchain storage: the latency/integrity trade-off.

The paper's Discussion proposes combining a classical database with the
blockchain ([9]) "to find a trade-off between latency, integrity
guarantees and cost".  This example runs the same log workload against:

- the pure on-chain store (every entry a transaction),
- a plain database (fast, zero tamper evidence),
- the hybrid store at several anchoring intervals,

then lets an adversary tamper with the database and shows what each
configuration can prove after the fact.

Run:  python examples/hybrid_storage_tradeoff.py
"""

from repro.blockchain.config import BlockchainConfig
from repro.blockchain.contracts import ContractRegistry, KeyValueContract
from repro.blockchain.node import BlockchainNode
from repro.common.rng import SeededRng
from repro.crypto.signatures import SigningKey
from repro.metrics.tables import format_table
from repro.simnet.latency import ConstantLatency
from repro.simnet.network import Network
from repro.simnet.simulator import Simulator
from repro.storage.auditor import IntegrityAuditor
from repro.storage.database import DatabaseStore
from repro.storage.hybrid import HybridStore
from repro.storage.purechain import PureChainStore

ENTRIES = 60
ENTRY_INTERVAL = 0.2  # seconds between log writes


def build_node(seed: int):
    sim = Simulator()
    rng = SeededRng(seed, "hybrid-example")
    network = Network(sim, rng, ConstantLatency(0.002))
    registry = ContractRegistry()
    registry.deploy(KeyValueContract())
    config = BlockchainConfig(chain_id="storage-demo", difficulty_bits=10.0,
                              target_block_interval=1.0, retarget_window=0,
                              pow_mode="simulated", confirmations=2)
    node_key = SigningKey.generate(b"node")
    client_key = SigningKey.generate(b"client")
    keys = {"node-1": node_key.public, "client": client_key.public}
    node = BlockchainNode(network, "node-1", config, registry, rng,
                          key_lookup=keys.get, signing_key=node_key,
                          hashrate=1024.0)
    node.connect([])
    node.start()
    return sim, rng, node, client_key


def feed(sim, store_fn):
    for index in range(ENTRIES):
        sim.schedule(index * ENTRY_INTERVAL,
                     lambda index=index: store_fn(f"log-{index}",
                                                  {"entry": index}))


def mean(values):
    return sum(values) / len(values) if values else float("nan")


def main() -> None:
    rows = []

    # ---- pure chain --------------------------------------------------------
    sim, rng, node, client_key = build_node(1)
    pure = PureChainStore(node, "client", client_key)
    feed(sim, lambda key, value: pure.store(key, value))
    sim.run(until=90.0)
    rows.append({
        "store": "pure-chain",
        "ack_ms": round(mean(pure.durable_latencies) * 1000, 1),
        "durable_ms": round(mean(pure.durable_latencies) * 1000, 1),
        "integrity_window_s": 0.0,
        "tamper_evidence": "every entry",
    })

    # ---- plain database ---------------------------------------------------------
    sim2 = Simulator()
    database_only = DatabaseStore(sim2, SeededRng(2, "db-only"))
    acks = []
    start_times = {}

    def db_store(key, value):
        start_times[key] = sim2.now
        database_only.write(key, value,
                            on_ack=lambda k: acks.append(sim2.now - start_times[k]))

    feed(sim2, db_store)
    sim2.run(until=60.0)
    rows.append({
        "store": "database-only",
        "ack_ms": round(mean(acks) * 1000, 1),
        "durable_ms": float("nan"),
        "integrity_window_s": float("inf"),
        "tamper_evidence": "none",
    })

    # ---- hybrid at several anchor intervals -----------------------------------------
    for anchor_interval in (1.0, 5.0, 15.0):
        sim3, rng3, node3, client_key3 = build_node(int(anchor_interval * 10))
        database = DatabaseStore(sim3, rng3)
        hybrid = HybridStore(database, node3, "client", client_key3,
                             anchor_interval=anchor_interval)
        hybrid.start()
        feed(sim3, lambda key, value: hybrid.store(key, value))
        sim3.run(until=120.0)
        rows.append({
            "store": f"hybrid(anchor={anchor_interval:.0f}s)",
            "ack_ms": round(mean(hybrid.ack_latencies) * 1000, 1),
            "durable_ms": round(
                (anchor_interval / 2 + mean(hybrid.anchor_latencies)) * 1000, 1),
            "integrity_window_s": hybrid.integrity_window(),
            "tamper_evidence": f"{len(hybrid.anchors)} anchors",
        })

    print(format_table(rows, title="Log storage trade-off "
                                   f"({ENTRIES} entries, 1 every "
                                   f"{ENTRY_INTERVAL}s)"))

    # ---- tampering demonstration ------------------------------------------------------
    print("\n=== Tampering aftermath (hybrid, 5s anchors) ===")
    sim4, rng4, node4, client_key4 = build_node(99)
    database = DatabaseStore(sim4, rng4)
    hybrid = HybridStore(database, node4, "client", client_key4,
                         anchor_interval=5.0)
    hybrid.start()
    feed(sim4, lambda key, value: hybrid.store(key, value))
    sim4.run(until=120.0)

    database.tamper("log-7", {"entry": "FORGED"})
    database.delete("log-20")
    auditor = IntegrityAuditor(database, hybrid)
    report = auditor.audit()
    print(" ", report.summary())
    print(f"  violated batches: {report.batches_violated}")
    print(f"  rows proven missing: {report.missing_rows}")
    print("  (a database-only deployment would have noticed nothing)")


if __name__ == "__main__":
    main()
