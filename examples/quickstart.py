"""Quickstart: deploy Figure 1 and watch DRAMS monitor a federation.

Builds the paper's architecture — two clouds, member tenants with edge
PEPs, an infrastructure tenant hosting the PDP/PRP and the Analyser, a
private smart-contract blockchain spanning every tenant — runs a small
workload through it, and prints what the monitoring system recorded.

Run:  python examples/quickstart.py
"""

from repro.harness import MonitoredFederation
from repro.metrics.tables import format_table
from repro.workload.scenarios import healthcare_scenario


def main() -> None:
    # 1. Build the monitored federation (Figure 1) for the healthcare
    #    scenario: hospitals in two clouds sharing records and lab results.
    stack = MonitoredFederation.build(healthcare_scenario(), clouds=2, seed=7)

    print("=== Federation topology (Figure 1) ===")
    description = stack.federation.describe()
    for cloud in description["clouds"]:
        print(f"  {cloud['name']}: sections {', '.join(cloud['sections'])}")
    for name, tenant in description["tenants"].items():
        hosts = ", ".join(tenant["hosts"]) or "(none)"
        print(f"  tenant {name} [{tenant['kind']}]: {hosts}")

    # 2. Start monitoring (mining, timeout ticks, analyser sweeps).
    stack.start()

    # 3. Issue 25 access requests drawn from the scenario's workload model.
    stack.issue_requests(25)

    # 4. Run the simulation for two simulated minutes.
    stack.run(until=120.0)

    # 5. What happened?
    print("\n=== Access outcomes ===")
    granted = sum(1 for outcome in stack.outcomes if outcome.granted)
    print(f"  requests enforced: {len(stack.outcomes)}  granted: {granted}  "
          f"denied: {len(stack.outcomes) - granted}")
    latencies = sorted(stack.access_latencies())
    print(f"  access latency p50: {latencies[len(latencies) // 2] * 1000:.1f} ms")

    print("\n=== DRAMS monitoring ===")
    stats = stack.drams.stats()
    print(f"  chain height: {stats['chain_height']}  "
          f"(reorgs: {stats['reorgs']})")
    print(f"  log entries on chain: {stats['monitor']['logs']} "
          f"({stats['logs_submitted']} submitted by the LIs)")
    print(f"  flows verified by the smart contract: "
          f"{stats['monitor']['verified']}")
    print(f"  decisions re-checked by the analyser: "
          f"{stats['analyser_checked']}")
    print(f"  security alerts: {stats['monitor']['alerts']} "
          f"(an honest run should report 0)")

    commit = stack.drams.commit_latencies()
    print(f"  log commit latency (submit → final): "
          f"mean {sum(commit) / len(commit):.2f} s over {len(commit)} entries")

    print("\n=== Per-tenant logging interfaces ===")
    rows = []
    for tenant, li in sorted(stack.drams.interfaces.items()):
        rows.append({
            "tenant": tenant,
            "logs_submitted": li.logs_submitted,
            "alerts_seen": len(li._seen_alerts),
            "key": li.keystore.owner,
        })
    print(format_table(rows))


if __name__ == "__main__":
    main()
