"""Attack detection demo: the full threat catalogue against DRAMS.

Injects each attack from the paper's threat model into its own fresh
federation, runs a workload, and reports whether (and how fast) DRAMS
detected it — the runnable version of the paper's Section I claims.

Run:  python examples/attack_detection.py
"""

from repro.drams.system import DramsConfig
from repro.blockchain.config import BlockchainConfig
from repro.harness import MonitoredFederation
from repro.metrics.tables import format_table
from repro.policydist import ReplicatedPrpPlane
from repro.threats.adversary import Adversary
from repro.threats.attacks import (
    CircumventionAttack,
    DecisionTamperAttack,
    EvaluationTamperAttack,
    LogTamperAttack,
    PolicySwapAttack,
    ProbeSuppressionAttack,
    ReplayAttack,
    RequestTamperAttack,
    TamperedPrpReplicaAttack,
)
from repro.workload.scenarios import healthcare_scenario
from repro.xacml.parser import policy_to_dict
from repro.xacml.policy import Effect, Policy, Rule


def demo_config(use_tpm: bool) -> DramsConfig:
    return DramsConfig(
        chain=BlockchainConfig(chain_id="demo", difficulty_bits=10.0,
                               target_block_interval=0.5, retarget_window=0,
                               pow_mode="simulated", confirmations=2),
        timeout_blocks=6,
        tick_interval=1.0,
        analyser_sweep_interval=1.0,
        use_tpm=use_tpm,
        attestation_interval=2.0 if use_tpm else 0.0,
    )


def rogue_policy() -> dict:
    return policy_to_dict(Policy(
        policy_id="rogue-permit-all", rule_combining="permit-overrides",
        rules=[Rule("allow-everything", Effect.PERMIT)]))


def run_one(attack, use_tpm=False, seed=123, extra_steps=None, policy_plane=None):
    stack = MonitoredFederation.build(healthcare_scenario(), clouds=2,
                                      seed=seed, drams_config=demo_config(use_tpm),
                                      policy_plane=policy_plane)
    stack.start()
    adversary = Adversary(stack.drams)
    adversary.launch(attack, at=0.5)
    stack.issue_requests(15)
    if extra_steps:
        extra_steps(stack, attack)
    stack.run(until=60.0)
    record = adversary.records()[0]
    alert_types = sorted({alert.alert_type.value
                          for alert in record.matched_alerts})
    for alert in adversary.false_positives():
        print(f"  [unattributed alert during {record.attack_name}: "
              f"{alert.alert_type.value} on {alert.correlation_id[:12]} "
              f"{alert.details}]")
    return {
        "attack": record.attack_name + (" (TPM)" if use_tpm else ""),
        "detected": "yes" if record.detected else "NO",
        "latency_s": (round(record.detection_latency, 2)
                      if record.detection_latency is not None else "-"),
        "alerts": ", ".join(alert_types) or "-",
        "false_pos": len(adversary.false_positives()),
    }


def main() -> None:
    print("Injecting the full attack catalogue (one attack per fresh "
          "federation)...\n")
    rows = []
    rows.append(run_one(RequestTamperAttack("tenant-1",
                                            escalated_value="doctor"), seed=1))
    rows.append(run_one(DecisionTamperAttack("tenant-2"), seed=2))
    rows.append(run_one(CircumventionAttack("tenant-1"), seed=3))
    rows.append(run_one(EvaluationTamperAttack(), seed=4))
    rows.append(run_one(PolicySwapAttack(rogue_policy()), seed=5))
    rows.append(run_one(ProbeSuppressionAttack("pep:tenant-1"), seed=6))
    rows.append(run_one(LogTamperAttack("tenant-1"), use_tpm=False, seed=7))
    rows.append(run_one(LogTamperAttack("tenant-1"), use_tpm=True, seed=8))

    def fire_replay(stack, attack):
        stack.sim.schedule(15.0, lambda: attack.replay_now(
            stack.drams, {"subject-id": "mallory", "role": "doctor"}))

    rows.append(run_one(ReplayAttack("tenant-1"), seed=9,
                        extra_steps=fire_replay))

    # Policy-plane attack: needs a replicated PRP plane — against a shared
    # single store the tamper would rewrite the Analyser's own view too.
    rows.append(run_one(
        TamperedPrpReplicaAttack(rogue_policy()), seed=10,
        policy_plane=ReplicatedPrpPlane(propagation_delay=0.1,
                                        propagation_jitter=0.05)))

    print(format_table(rows, title="DRAMS detection results"))
    print("\nReading the table:")
    print("  - request/decision tampering -> hash-mismatch alerts from the")
    print("    monitor smart contract (no plaintext needed on-chain);")
    print("  - circumvention / probe suppression -> timeout sweep flags the")
    print("    monitoring points that never reported;")
    print("  - evaluation tampering / policy swap -> only the Analyser's")
    print("    independent re-derivation catches these (hashes all match);")
    print("  - log tampering without TPM -> forged commitment disagrees with")
    print("    the honest side; with TPM the LI loses the sealed key and")
    print("    attestation pinpoints the compromised host;")
    print("  - replay -> same correlation id, different payload: equivocation;")
    print("  - tampered PRP replica -> decisions carry a policy fingerprint no")
    print("    publisher ever produced; the Analyser's provenance audit flags")
    print("    them as policy-violation once its replica-lag grace expires.")


if __name__ == "__main__":
    main()
