"""Cross-border healthcare federation: policies, analysis, monitoring.

A deeper tour than the quickstart:

1. static policy verification (completeness, rule conflicts) with the
   formal analysis framework the Analyser is built on;
2. a policy *update* published through the PAP with change-impact
   analysis — exactly which accesses flip;
3. a monitored workload run with per-role outcome statistics and the
   obligations the PEPs were instructed to discharge.

Run:  python examples/healthcare_federation.py
"""

from repro.analysis.properties import check_completeness, find_conflicts
from repro.harness import MonitoredFederation
from repro.metrics.tables import format_table
from repro.workload.scenarios import healthcare_scenario
from repro.xacml.parser import policy_from_dict, policy_to_dict
from repro.xacml.policy import Effect, Rule, Target


def main() -> None:
    scenario = healthcare_scenario()

    # ---- 1. static verification --------------------------------------------
    print("=== Static policy verification ===")
    completeness = check_completeness(scenario.policy_document, scenario.domain)
    print(" ", completeness.summary())
    conflicts = find_conflicts(scenario.policy_document, scenario.domain)
    print(" ", conflicts.summary())
    for counterexample in conflicts.counterexamples[:2]:
        print(f"    e.g. policy {counterexample['policy_id']}: "
              f"{counterexample['permit_rules']} vs "
              f"{counterexample['deny_rules']}")

    # ---- 2. deploy and run -------------------------------------------------------
    stack = MonitoredFederation.build(scenario, clouds=2, seed=11)
    stack.start()
    stack.issue_requests(40)
    stack.run(until=90.0)

    print("\n=== Workload outcomes by role ===")
    by_role: dict[str, dict[str, int]] = {}
    for outcome in stack.outcomes:
        role = outcome.request.content["subject"]["role"][0]
        bucket = by_role.setdefault(role, {"granted": 0, "denied": 0})
        bucket["granted" if outcome.granted else "denied"] += 1
    print(format_table([
        {"role": role, **counts} for role, counts in sorted(by_role.items())
    ]))

    print("\n=== Obligations discharged by PEPs ===")
    obligations: dict[str, int] = {}
    for outcome in stack.outcomes:
        for obligation in outcome.decision.obligations:
            obligations[obligation["obligation_id"]] = (
                obligations.get(obligation["obligation_id"], 0) + 1)
    for obligation_id, count in sorted(obligations.items()):
        print(f"  {obligation_id}: {count}x")

    # ---- 3. policy update with change impact ------------------------------------
    print("\n=== Publishing a policy update (nurses may read records) ===")
    document = scenario.policy_document
    updated = policy_from_dict(document)
    records_policy = updated.iter_policies()[0]
    records_policy.rules.insert(1, Rule(
        "nurse-read", Effect.PERMIT,
        target=Target.single("string-equal", "nurse", "subject", "role"),
        condition=None,
        description="pilot: ward nurses read records"))
    version = stack.pap.publish(policy_to_dict(updated),
                                published_at=stack.sim.now,
                                impact_domain=scenario.domain)
    print(f"  published version {version.version} "
          f"(fingerprint {version.fingerprint[:12]})")
    report = stack.pap.last_impact_report
    print(f"  change impact: {len(report.counterexamples)} request classes "
          f"changed over {report.checked} checked")
    for counterexample in report.counterexamples[:3]:
        subject = counterexample["request"]["subject"]
        action = counterexample["request"]["action"]["action-id"][0]
        print(f"    {subject.get('role')} {action}: "
              f"{counterexample['old']} -> {counterexample['new']}")

    # ---- 4. the monitoring keeps agreeing with the new version ------------------
    stack.issue_requests(20, start_at=stack.sim.now + 1.0)
    stack.run(until=stack.sim.now + 60.0)
    stats = stack.drams.stats()
    print("\n=== After the update ===")
    print(f"  decisions checked by analyser: {stats['analyser_checked']}")
    print(f"  alerts: {stats['monitor']['alerts']} "
          f"(still 0: the PDP follows the PRP, so no violation)")


if __name__ == "__main__":
    main()
